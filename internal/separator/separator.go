// Package separator implements the topological-separator execution
// technique of Section 3 of Bilardi & Preparata (SPAA 1995): the recursive
// procedure of Proposition 2 that executes a convex dag domain U on an
// f(x)-H-RAM by
//
//  1. copying the preboundary Γin(Ui) of each piece of U's topological
//     partition into low memory,
//  2. executing the piece recursively in working space [0, S(Ui)), and
//  3. copying the piece's still-needed values ("live-outs") into a staging
//     area below S(U),
//
// with real address management on a real hram.Machine, so that the measured
// virtual time is obtained from first principles rather than from the
// closed-form bound. Proposition 3's conclusions — space σ(k) = O(k^γ) and
// time τ(k) = O(k log k) for (c·x^γ, δ)-separators on (a·x^α)-H-RAMs with
// α <= (1-γ)/γ — are then checked empirically against these measurements
// by the experiment suite.
//
// The executor is generic over lattice.Domain (diamonds for d = 1,
// octahedra/tetrahedra for d = 2) and dag.Graph (linear array, mesh), which
// is exactly the generality the paper's technique claims.
package separator

import (
	"bsmp/internal/cost"
	"fmt"

	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
)

// DefaultLeafSize is the domain size below which execution is direct
// (vertex by vertex in topological order) rather than recursive. Any small
// constant preserves the asymptotics; 8 keeps recursion overhead low.
const DefaultLeafSize = 8

// Executor runs one dag program on one H-RAM via the separator technique.
type Executor struct {
	// G is the computation dag; Prog its value semantics.
	G    dag.Graph
	Prog dag.Program
	// LeafSize bounds direct execution; DefaultLeafSize if zero.
	LeafSize int
	// Check, when non-nil, is polled at every phase boundary (once per
	// partition child, with vertices = 0) and after every executed leaf
	// (with vertices = the leaf's vertex count). Returning a non-nil
	// error aborts the execution with that error. The hook is invoked
	// between charged operations and must not touch the machine, so it
	// cannot perturb measured virtual times. simulate.UniDCContext uses
	// it for cooperative cancellation and progress metering.
	Check func(vertices int) error

	m *hram.Machine
	// loc is the dense address table: one int32 slot per dag vertex
	// (lattice.Indexer over G.Bounds()), -1 when the vertex holds no live
	// value. It replaces the seed's map[lattice.Point]int and is allocated
	// once per Execute, shared by every recursion level.
	loc *lattice.AddrTable
	// live is the scratch live-out membership set. One set suffices for
	// the whole recursion: it is populated and fully drained between a
	// child's return and the next child's descent, so no two recursion
	// levels ever hold it at once (see exec).
	live *lattice.PointSet
	// ovStack arenas the per-depth preboundary-override buffers, so the
	// recursion reuses one backing array per depth instead of allocating
	// per partition node.
	ovStack [][]savedLoc

	// maxAddrTouched tracks the peak address, for space-bound checks.
	maxAddrTouched int
	// spaceMemo caches SpaceNeeded per (comparable) domain value.
	spaceMemo map[lattice.Domain]int
	// levels accumulates per-recursion-depth transfer statistics.
	levels []LevelStat
}

// savedLoc remembers a preboundary vertex's parent-level address while the
// child executes with the vertex rebound to its copied-down slot.
type savedLoc struct {
	p    lattice.Point
	addr int
}

// LevelStat records the relocation work done at one recursion depth of
// Proposition 2's procedure. Proposition 3's τ(k) = O(k·log k) bound rests
// on every depth moving O(k) worth of (words × access cost); the
// experiment suite checks that measured per-level Transfer time is flat
// across depths.
type LevelStat struct {
	// Domains is the number of partition nodes processed at this depth.
	Domains int
	// WordsMoved counts preboundary copy-downs plus live-out stagings.
	WordsMoved int
	// TransferTime is the virtual time those moves cost.
	TransferTime float64
}

// SpaceNeeded computes the space allowance S(U) of Proposition 2 for the
// given domain: the recursive maximum of children allowances plus staging
// for live-out values plus the incoming preboundary slot. Leaf domains use
// one cell per vertex plus the preboundary slot.
func SpaceNeeded(g dag.Graph, dom lattice.Domain, leafSize int) int {
	return spaceNeededMemo(g, dom, leafSize, nil)
}

// spaceNeededMemo memoizes the allowance per domain. Domain values
// (Diamond, Box4, Box6) are comparable structs, so the executor can reuse
// one cache across its whole run, turning the repeated subtree walks into
// a single pass.
func spaceNeededMemo(g dag.Graph, dom lattice.Domain, leafSize int, memo map[lattice.Domain]int) int {
	if leafSize <= 0 {
		leafSize = DefaultLeafSize
	}
	if memo != nil {
		if s, ok := memo[dom]; ok {
			return s
		}
	}
	gin := len(dag.Preboundary(g, dom))
	kids := dom.Children()
	var out int
	if kids == nil || dom.Size() <= leafSize {
		out = dom.Size() + gin
	} else {
		smax, lout := 0, 0
		for _, k := range kids {
			if s := spaceNeededMemo(g, k, leafSize, memo); s > smax {
				smax = s
			}
			lout += len(dag.LiveOut(g, k))
		}
		out = smax + lout + gin
	}
	if memo != nil {
		memo[dom] = out
	}
	return out
}

// Result reports the outcome of a separator execution.
type Result struct {
	// Outputs are the final-layer values indexed by network node
	// (x for the line; y*side+x for the mesh; (z*side+y)*side+x for the
	// cube).
	Outputs []dag.Value
	// Space is the memory allowance S of the root call (machine size).
	Space int
	// MaxAddr is the highest address actually touched.
	MaxAddr int
	// Vertices is the number of dag vertices executed.
	Vertices int
	// Levels is the per-recursion-depth relocation profile.
	Levels []LevelStat
}

// Execute runs the full computation dag of g on a fresh f-H-RAM charging
// into machine m's meter, and returns the final-layer outputs. The domain
// executed is g's full domain (every vertex including the t = 0 inputs,
// which are materialized by Prog.Input at unit cost when reached — the
// paper's input vertices).
func (e *Executor) Execute(m *hram.Machine, root lattice.Domain) (Result, error) {
	if e.LeafSize <= 0 {
		e.LeafSize = DefaultLeafSize
	}
	e.m = m
	ix := lattice.NewIndexer(e.G.Bounds())
	if e.loc == nil {
		e.loc = lattice.NewAddrTable(ix)
		e.live = lattice.NewPointSet(ix)
	} else {
		// Executor reuse: retarget the arenas, keeping their storage.
		e.loc.Reset(ix)
		e.live.Reset(ix)
	}
	e.maxAddrTouched = 0
	e.levels = nil
	e.spaceMemo = make(map[lattice.Domain]int, 1024)

	space := spaceNeededMemo(e.G, root, e.LeafSize, e.spaceMemo)
	if m.Size() < space {
		return Result{}, fmt.Errorf("separator: machine size %d < required space %d", m.Size(), space)
	}
	if err := e.exec(root, space, 0); err != nil {
		return Result{}, err
	}

	// Collect outputs from the final layer.
	last := e.G.Steps() - 1
	out := make([]dag.Value, e.G.Nodes())
	count := 0
	root.Points(func(p lattice.Point) bool {
		if p.T != last {
			return true
		}
		addr, ok := e.loc.Get(p)
		if !ok {
			count = -1
			return false
		}
		out[e.nodeIndex(p)] = m.Peek(addr)
		count++
		return true
	})
	if count < 0 {
		return Result{}, fmt.Errorf("separator: missing output value in final layer")
	}
	return Result{
		Outputs:  out,
		Space:    space,
		MaxAddr:  e.maxAddrTouched,
		Vertices: root.Size(),
		Levels:   e.levels,
	}, nil
}

// level returns the stat accumulator for depth, growing the slice.
func (e *Executor) level(depth int) *LevelStat {
	for len(e.levels) <= depth {
		e.levels = append(e.levels, LevelStat{})
	}
	return &e.levels[depth]
}

// nodeIndex flattens a point's spatial coordinates to a node index.
func (e *Executor) nodeIndex(p lattice.Point) int {
	switch g := e.G.(type) {
	case dag.MeshGraph:
		return p.Y*g.Side + p.X
	case dag.CubeGraph:
		return (p.Z*g.Side+p.Y)*g.Side + p.X
	default:
		return p.X
	}
}

// touch records the highest touched address.
func (e *Executor) touch(addr int) int {
	if addr > e.maxAddrTouched {
		e.maxAddrTouched = addr
	}
	return addr
}

// exec implements Proposition 2. Contract: on entry, every vertex of
// Γin(dom) has a valid address in e.loc; on exit, every vertex of
// LiveOut(dom) has a valid address in e.loc, and loc entries for dead
// vertices of dom have been removed.
func (e *Executor) exec(dom lattice.Domain, space int, depth int) error {
	kids := dom.Children()
	if kids == nil || dom.Size() <= e.LeafSize {
		return e.execLeaf(dom)
	}
	e.level(depth).Domains++

	gin := dag.Preboundary(e.G, dom)
	// Staging area below the incoming preboundary slot.
	stagePtr := space - len(gin)

	for len(e.ovStack) <= depth {
		e.ovStack = append(e.ovStack, nil)
	}
	for _, kid := range kids {
		if e.Check != nil {
			if err := e.Check(0); err != nil {
				return err
			}
		}
		skid := spaceNeededMemo(e.G, kid, e.LeafSize, e.spaceMemo)
		ginKid := dag.Preboundary(e.G, kid)

		// Step 1 (Prop 2): copy the child's preboundary into
		// [skid - |Γin(kid)|, skid), overriding loc only within the
		// child's execution. The override buffer comes from this depth's
		// arena slot: deeper recursion uses its own slots, so the buffer
		// stays valid across the exec(kid) call below.
		overrides := e.ovStack[depth][:0]
		dstBase := skid - len(ginKid)
		before := e.m.Meter().Total(cost.Transfer)
		for i, q := range ginKid {
			src, ok := e.loc.Get(q)
			if !ok {
				return fmt.Errorf("separator: preboundary value %v of %v unavailable", q, kid)
			}
			dst := dstBase + i
			e.m.MoveWord(e.touch(dst), src)
			overrides = append(overrides, savedLoc{q, src})
			e.loc.Set(q, dst)
		}
		// Re-fetch the accumulator: deeper recursion may have grown the
		// levels slice, invalidating any held pointer.
		st := e.level(depth)
		st.WordsMoved += len(ginKid)
		st.TransferTime += float64(e.m.Meter().Total(cost.Transfer) - before)

		// Step 2: execute the child in [0, skid).
		if err := e.exec(kid, skid, depth+1); err != nil {
			return err
		}

		// Step 3: persist the child's live-outs into staging (below
		// the parent's preboundary slot, above every child workspace).
		// e.live is free here: the child's own exec drained it before
		// returning, and it is drained again below before the next
		// descent.
		live := dag.LiveOut(e.G, kid)
		before = e.m.Meter().Total(cost.Transfer)
		for _, v := range live {
			e.live.Add(v)
			src, ok := e.loc.Get(v)
			if !ok {
				return fmt.Errorf("separator: live-out value %v of %v unavailable", v, kid)
			}
			stagePtr--
			if stagePtr < skid {
				return fmt.Errorf("separator: staging area underflow in %v", dom)
			}
			e.m.MoveWord(e.touch(stagePtr), src)
			e.loc.Set(v, stagePtr)
		}

		st = e.level(depth)
		st.WordsMoved += len(live)
		st.TransferTime += float64(e.m.Meter().Total(cost.Transfer) - before)

		// Restore the parent-level addresses of the child's preboundary
		// and drop dead child vertices so stale reads fail loudly.
		for _, s := range overrides {
			e.loc.Set(s.p, s.addr)
		}
		kid.Points(func(p lattice.Point) bool {
			if !e.live.Has(p) {
				e.loc.Delete(p)
			}
			return true
		})
		for _, v := range live {
			e.live.Remove(v)
		}
		e.ovStack[depth] = overrides
	}
	return nil
}

// execLeaf executes every vertex of dom directly, in ascending (T, X, Y)
// order, allocating result cells from address 0 upward.
func (e *Executor) execLeaf(dom lattice.Domain) error {
	next := 0
	var buf []lattice.Point
	ops := make([]dag.Value, 0, 5)
	var fail error
	dom.Points(func(p lattice.Point) bool {
		buf = e.G.Preds(p, buf[:0])
		ops = ops[:0]
		for _, q := range buf {
			addr, ok := e.loc.Get(q)
			if !ok {
				fail = fmt.Errorf("separator: operand %v of %v unavailable", q, p)
				return false
			}
			ops = append(ops, e.m.Read(addr))
		}
		var v dag.Value
		if len(buf) == 0 {
			v = e.Prog.Input(p)
		} else {
			v = e.Prog.Step(p, ops)
		}
		e.m.Op()
		addr := next
		next++
		e.m.Write(e.touch(addr), v)
		e.loc.Set(p, addr)
		return true
	})
	if fail == nil && e.Check != nil {
		fail = e.Check(dom.Size())
	}
	return fail
}
