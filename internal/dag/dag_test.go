package dag

import (
	"testing"
	"testing/quick"

	"bsmp/internal/lattice"
)

// sumProg is a simple exactly-verifiable program: inputs are a hash of the
// position, steps sum the operands with a position-dependent twist.
type sumProg struct{}

func (sumProg) Input(v lattice.Point) Value {
	return Value(v.X*2654435761+v.Y*40503+7) | 1
}

func (sumProg) Step(v lattice.Point, ops []Value) Value {
	var s Value = Value(v.T)
	for i, o := range ops {
		s += o * Value(2*i+1)
	}
	return s
}

func TestLineGraphPreds(t *testing.T) {
	g := NewLineGraph(4, 4)
	cases := []struct {
		p    lattice.Point
		want []lattice.Point
	}{
		{lattice.Point{X: 0, T: 0}, nil},
		{lattice.Point{X: 1, T: 2}, []lattice.Point{{X: 0, T: 1}, {X: 1, T: 1}, {X: 2, T: 1}}},
		{lattice.Point{X: 0, T: 1}, []lattice.Point{{X: 0, T: 0}, {X: 1, T: 0}}},
		{lattice.Point{X: 3, T: 1}, []lattice.Point{{X: 2, T: 0}, {X: 3, T: 0}}},
	}
	for _, c := range cases {
		got := g.Preds(c.p, nil)
		if len(got) != len(c.want) {
			t.Errorf("Preds(%v) = %v, want %v", c.p, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Preds(%v)[%d] = %v, want %v", c.p, i, got[i], c.want[i])
			}
		}
	}
}

func TestMeshGraphPreds(t *testing.T) {
	g := NewMeshGraph(3, 3)
	// Interior vertex has 5 preds; corner has 3.
	if got := len(g.Preds(lattice.Point{X: 1, Y: 1, T: 1}, nil)); got != 5 {
		t.Errorf("interior preds = %d, want 5", got)
	}
	if got := len(g.Preds(lattice.Point{X: 0, Y: 0, T: 1}, nil)); got != 3 {
		t.Errorf("corner preds = %d, want 3", got)
	}
	if got := len(g.Preds(lattice.Point{X: 0, Y: 1, T: 2}, nil)); got != 4 {
		t.Errorf("edge preds = %d, want 4", got)
	}
	if got := len(g.Preds(lattice.Point{X: 1, Y: 1, T: 0}, nil)); got != 0 {
		t.Errorf("input preds = %d, want 0", got)
	}
}

func TestPredsStayInGraph(t *testing.T) {
	lg := NewLineGraph(5, 5)
	lg.Domain().Points(func(p lattice.Point) bool {
		for _, q := range lg.Preds(p, nil) {
			if !lg.Contains(q) {
				t.Fatalf("line pred %v of %v outside graph", q, p)
			}
		}
		return true
	})
	mg := NewMeshGraph(4, 4)
	mg.Domain().Points(func(p lattice.Point) bool {
		for _, q := range mg.Preds(p, nil) {
			if !mg.Contains(q) {
				t.Fatalf("mesh pred %v of %v outside graph", q, p)
			}
		}
		return true
	})
}

func TestDomainsMatchGraphs(t *testing.T) {
	lg := NewLineGraph(6, 4)
	if got, want := lg.Domain().Size(), 6*4; got != want {
		t.Errorf("line domain size %d, want %d", got, want)
	}
	mg := NewMeshGraph(3, 5)
	if got, want := mg.Domain().Size(), 3*3*5; got != want {
		t.Errorf("mesh domain size %d, want %d", got, want)
	}
}

func TestPreboundaryOfInteriorDiamond(t *testing.T) {
	g := NewLineGraph(32, 32)
	// An interior diamond far from machine edges: preboundary ~ 2r.
	d := lattice.NewDiamond(20, -4, 8, lattice.ClipAll1D(32, 32))
	if d.Size() == 0 {
		t.Fatal("test domain empty")
	}
	pb := Preboundary(g, d)
	if len(pb) == 0 || len(pb) > 2*8+2 {
		t.Fatalf("preboundary size %d, want in (0, 18]", len(pb))
	}
	for _, q := range pb {
		if d.Contains(q) {
			t.Errorf("preboundary point %v inside domain", q)
		}
		if !g.Contains(q) {
			t.Errorf("preboundary point %v outside graph", q)
		}
	}
}

func TestPreboundaryOfInputLayerIsEmpty(t *testing.T) {
	g := NewLineGraph(8, 8)
	// The whole domain: every predecessor is inside, so Γin = ∅.
	pb := Preboundary(g, g.Domain())
	if len(pb) != 0 {
		t.Fatalf("whole-domain preboundary = %v, want empty", pb)
	}
}

func TestIsTopologicalOrder(t *testing.T) {
	g := NewLineGraph(3, 3)
	var order []lattice.Point
	g.Domain().Points(func(p lattice.Point) bool {
		order = append(order, p)
		return true
	})
	if !IsTopologicalOrder(g, order) {
		t.Fatal("ascending (T,X) order rejected")
	}
	// Swap two dependent vertices: (1,1) before (1,0).
	bad := make([]lattice.Point, len(order))
	copy(bad, order)
	var i0, i1 int
	for i, p := range bad {
		if p == (lattice.Point{X: 1, T: 0}) {
			i0 = i
		}
		if p == (lattice.Point{X: 1, T: 1}) {
			i1 = i
		}
	}
	bad[i0], bad[i1] = bad[i1], bad[i0]
	if IsTopologicalOrder(g, bad) {
		t.Fatal("order with violated dependency accepted")
	}
	// Duplicate vertex.
	dup := append([]lattice.Point{order[0]}, order...)
	if IsTopologicalOrder(g, dup) {
		t.Fatal("order with duplicate accepted")
	}
}

func TestReferenceLineMatchesManual(t *testing.T) {
	g := NewLineGraph(3, 2)
	out := Reference(g, sumProg{})
	// Manual: inputs i0,i1,i2; step at t=1.
	in := []Value{
		sumProg{}.Input(lattice.Point{X: 0}),
		sumProg{}.Input(lattice.Point{X: 1}),
		sumProg{}.Input(lattice.Point{X: 2}),
	}
	want := []Value{
		1 + in[0]*1 + in[1]*3,
		1 + in[0]*1 + in[1]*3 + in[2]*5,
		1 + in[1]*1 + in[2]*3,
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestReferenceMeshDeterministic(t *testing.T) {
	g := NewMeshGraph(5, 6)
	a := Reference(g, sumProg{})
	b := Reference(g, sumProg{})
	if len(a) != 25 || len(b) != 25 {
		t.Fatalf("output lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for random small line graphs, the recursive diamond leaf order
// is topological (ties lattice + dag together).
func TestPropertyDiamondLeafOrderTopological(t *testing.T) {
	f := func(nRaw, tRaw uint8) bool {
		n := int(nRaw%12) + 2
		T := int(tRaw%12) + 2
		g := NewLineGraph(n, T)
		var order []lattice.Point
		var rec func(dom lattice.Domain)
		rec = func(dom lattice.Domain) {
			kids := dom.Children()
			if kids == nil {
				dom.Points(func(p lattice.Point) bool {
					order = append(order, p)
					return true
				})
				return
			}
			for _, k := range kids {
				rec(k)
			}
		}
		rec(g.Domain())
		return len(order) == n*T && IsTopologicalOrder(g, order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: preboundary vertices are exactly one layer below some domain
// vertex for diamonds (all arcs span one time step).
func TestPropertyPreboundaryAdjacent(t *testing.T) {
	g := NewLineGraph(16, 16)
	f := func(u0, w0 int8, r uint8) bool {
		d := lattice.NewDiamond(int(u0%16), int(w0%16)-8, int(r%10)+1, lattice.ClipAll1D(16, 16))
		if d.Size() == 0 {
			return true
		}
		for _, q := range Preboundary(g, d) {
			// q must have a successor in d.
			found := false
			for dx := -1; dx <= 1 && !found; dx++ {
				s := lattice.Point{X: q.X + dx, T: q.T + 1}
				if d.Contains(s) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSuccsMirrorPreds(t *testing.T) {
	// q is a successor of p iff p is a predecessor of q, for all graphs.
	graphs := []Graph{NewLineGraph(5, 5), NewMeshGraph(3, 4), NewCubeGraph(2, 3)}
	for _, g := range graphs {
		var order []lattice.Point
		switch gr := g.(type) {
		case LineGraph:
			gr.Domain().Points(func(p lattice.Point) bool { order = append(order, p); return true })
		case MeshGraph:
			gr.Domain().Points(func(p lattice.Point) bool { order = append(order, p); return true })
		case CubeGraph:
			gr.Domain().Points(func(p lattice.Point) bool { order = append(order, p); return true })
		}
		if g.Steps() < 2 || g.Nodes() < 2 {
			t.Fatalf("%T: degenerate geometry", g)
		}
		succOf := make(map[lattice.Point]map[lattice.Point]bool)
		for _, p := range order {
			for _, q := range g.Succs(p, nil) {
				if succOf[p] == nil {
					succOf[p] = map[lattice.Point]bool{}
				}
				succOf[p][q] = true
			}
		}
		for _, q := range order {
			for _, p := range g.Preds(q, nil) {
				if !succOf[p][q] {
					t.Fatalf("%T: %v pred of %v but not mirrored in Succs", g, p, q)
				}
				delete(succOf[p], q)
			}
		}
		for p, rest := range succOf {
			if len(rest) > 0 {
				t.Fatalf("%T: extra successors of %v: %v", g, p, rest)
			}
		}
	}
}
