// Package dag models the computation dags G_T(H) of Definition 3 of
// Bilardi & Preparata (SPAA 1995): a T-step computation of a network
// H = (N, E) is the directed acyclic graph with a vertex (v, t) per network
// node v and step t, and arcs (u, t-1) -> (v, t) whenever u = v or
// (u, v) ∈ E. Executing the dag is simulating the network.
//
// Dags are represented implicitly (by predecessor functions over lattice
// points), since the simulations operate on dags with up to billions of
// vertices conceptually; the concrete instances here are the linear array
// (LineGraph) and the square mesh (MeshGraph).
//
// The package also carries the value semantics used for functional
// verification: a Program assigns input values to the t = 0 vertices and a
// step function to the others, and Reference executes it directly — the
// "infinitely fast" executor whose output every hosted simulation must
// reproduce exactly.
package dag

import (
	"fmt"
	"sync"

	"bsmp/internal/lattice"
)

// Value is the datum carried by a dag vertex. Integer values make
// functional verification exact (no rounding ambiguity between executors).
type Value = uint64

// Graph is an implicit computation dag over lattice points.
type Graph interface {
	// Contains reports whether v is a vertex of the dag.
	Contains(v lattice.Point) bool
	// Preds appends the predecessors of v (in a fixed deterministic
	// order) to buf and returns the extended slice. Vertices at t = 0
	// have no predecessors (they are inputs). Predecessors are always
	// vertices of the dag (machine boundaries truncate the neighbor
	// stencil).
	Preds(v lattice.Point, buf []lattice.Point) []lattice.Point
	// Succs appends the successors of v (the vertices having v as a
	// predecessor) to buf and returns the extended slice. Vertices at
	// t = Steps()-1 have none.
	Succs(v lattice.Point, buf []lattice.Point) []lattice.Point
	// Steps reports T, the number of time layers (t in [0, T)).
	Steps() int
	// Nodes reports the number of network nodes |N| (vertices per layer).
	Nodes() int
	// Bounds reports the finite box containing every vertex of the dag,
	// the basis for the dense lattice.Indexer address tables used by the
	// executors in place of Point-keyed hash maps.
	Bounds() lattice.Clip
}

// LineGraph is G_T(M1(n, n, 1)): the n-node linear array run for T steps.
// Vertex (x, t) for 0 <= x < n, 0 <= t < T; predecessors are
// (x-1, t-1), (x, t-1), (x+1, t-1) clipped to the array.
type LineGraph struct {
	N, T int
}

// NewLineGraph returns the dag of an n-node linear array run for t steps.
func NewLineGraph(n, t int) LineGraph {
	if n < 1 || t < 1 {
		panic(fmt.Sprintf("dag: LineGraph(%d, %d) needs n, t >= 1", n, t))
	}
	return LineGraph{N: n, T: t}
}

// Contains implements Graph.
func (g LineGraph) Contains(v lattice.Point) bool {
	return v.Y == 0 && v.Z == 0 && v.X >= 0 && v.X < g.N && v.T >= 0 && v.T < g.T
}

// Preds implements Graph: left neighbor, self, right neighbor at t-1.
func (g LineGraph) Preds(v lattice.Point, buf []lattice.Point) []lattice.Point {
	if v.T <= 0 {
		return buf
	}
	if v.X > 0 {
		buf = append(buf, lattice.Point{X: v.X - 1, T: v.T - 1})
	}
	buf = append(buf, lattice.Point{X: v.X, T: v.T - 1})
	if v.X < g.N-1 {
		buf = append(buf, lattice.Point{X: v.X + 1, T: v.T - 1})
	}
	return buf
}

// Succs implements Graph: left neighbor, self, right neighbor at t+1.
func (g LineGraph) Succs(v lattice.Point, buf []lattice.Point) []lattice.Point {
	if v.T >= g.T-1 {
		return buf
	}
	if v.X > 0 {
		buf = append(buf, lattice.Point{X: v.X - 1, T: v.T + 1})
	}
	buf = append(buf, lattice.Point{X: v.X, T: v.T + 1})
	if v.X < g.N-1 {
		buf = append(buf, lattice.Point{X: v.X + 1, T: v.T + 1})
	}
	return buf
}

// Steps implements Graph.
func (g LineGraph) Steps() int { return g.T }

// Nodes implements Graph.
func (g LineGraph) Nodes() int { return g.N }

// Domain returns the full computation domain of the dag as a lattice
// domain (the bounding diamond clipped to V).
func (g LineGraph) Domain() lattice.Domain { return lattice.DiamondAround(g.N, g.T) }

// Bounds implements Graph.
func (g LineGraph) Bounds() lattice.Clip { return lattice.ClipAll1D(g.N, g.T) }

// MeshGraph is G_T(M2(n, n, 1)) with n = Side²: the Side × Side mesh run
// for T steps. Vertex (x, y, t); predecessors are the von Neumann stencil
// at t-1 clipped to the mesh.
type MeshGraph struct {
	Side, T int
}

// NewMeshGraph returns the dag of a side × side mesh run for t steps.
func NewMeshGraph(side, t int) MeshGraph {
	if side < 1 || t < 1 {
		panic(fmt.Sprintf("dag: MeshGraph(%d, %d) needs side, t >= 1", side, t))
	}
	return MeshGraph{Side: side, T: t}
}

// Contains implements Graph.
func (g MeshGraph) Contains(v lattice.Point) bool {
	return v.Z == 0 && v.X >= 0 && v.X < g.Side && v.Y >= 0 && v.Y < g.Side &&
		v.T >= 0 && v.T < g.T
}

// Preds implements Graph: self, then the four mesh neighbors (west, east,
// south, north) at t-1, clipped to the mesh.
func (g MeshGraph) Preds(v lattice.Point, buf []lattice.Point) []lattice.Point {
	if v.T <= 0 {
		return buf
	}
	t := v.T - 1
	buf = append(buf, lattice.Point{X: v.X, Y: v.Y, T: t})
	if v.X > 0 {
		buf = append(buf, lattice.Point{X: v.X - 1, Y: v.Y, T: t})
	}
	if v.X < g.Side-1 {
		buf = append(buf, lattice.Point{X: v.X + 1, Y: v.Y, T: t})
	}
	if v.Y > 0 {
		buf = append(buf, lattice.Point{X: v.X, Y: v.Y - 1, T: t})
	}
	if v.Y < g.Side-1 {
		buf = append(buf, lattice.Point{X: v.X, Y: v.Y + 1, T: t})
	}
	return buf
}

// Succs implements Graph: self, then the four mesh neighbors at t+1.
func (g MeshGraph) Succs(v lattice.Point, buf []lattice.Point) []lattice.Point {
	if v.T >= g.T-1 {
		return buf
	}
	t := v.T + 1
	buf = append(buf, lattice.Point{X: v.X, Y: v.Y, T: t})
	if v.X > 0 {
		buf = append(buf, lattice.Point{X: v.X - 1, Y: v.Y, T: t})
	}
	if v.X < g.Side-1 {
		buf = append(buf, lattice.Point{X: v.X + 1, Y: v.Y, T: t})
	}
	if v.Y > 0 {
		buf = append(buf, lattice.Point{X: v.X, Y: v.Y - 1, T: t})
	}
	if v.Y < g.Side-1 {
		buf = append(buf, lattice.Point{X: v.X, Y: v.Y + 1, T: t})
	}
	return buf
}

// Steps implements Graph.
func (g MeshGraph) Steps() int { return g.T }

// Nodes implements Graph.
func (g MeshGraph) Nodes() int { return g.Side * g.Side }

// Domain returns the full computation domain of the dag as a lattice
// domain (the bounding octahedron clipped to V).
func (g MeshGraph) Domain() lattice.Domain { return lattice.Box4Around(g.Side, g.T) }

// Bounds implements Graph.
func (g MeshGraph) Bounds() lattice.Clip { return lattice.ClipAll2D(g.Side, g.T) }

// CubeGraph is G_T(M3(n, n, 1)) with n = Side³: the Side × Side × Side
// cube mesh run for T steps — the d = 3 machine of the paper's concluding
// conjecture. Vertex (x, y, z, t); predecessors are the 7-point stencil
// at t-1 clipped to the cube.
type CubeGraph struct {
	Side, T int
}

// NewCubeGraph returns the dag of a side³ cube mesh run for t steps.
func NewCubeGraph(side, t int) CubeGraph {
	if side < 1 || t < 1 {
		panic(fmt.Sprintf("dag: CubeGraph(%d, %d) needs side, t >= 1", side, t))
	}
	return CubeGraph{Side: side, T: t}
}

// Contains implements Graph.
func (g CubeGraph) Contains(v lattice.Point) bool {
	return v.X >= 0 && v.X < g.Side && v.Y >= 0 && v.Y < g.Side &&
		v.Z >= 0 && v.Z < g.Side && v.T >= 0 && v.T < g.T
}

// Preds implements Graph: self, then the six cube neighbors at t-1.
func (g CubeGraph) Preds(v lattice.Point, buf []lattice.Point) []lattice.Point {
	if v.T <= 0 {
		return buf
	}
	return g.stencil(v, v.T-1, buf)
}

// Succs implements Graph: self, then the six cube neighbors at t+1.
func (g CubeGraph) Succs(v lattice.Point, buf []lattice.Point) []lattice.Point {
	if v.T >= g.T-1 {
		return buf
	}
	return g.stencil(v, v.T+1, buf)
}

func (g CubeGraph) stencil(v lattice.Point, t int, buf []lattice.Point) []lattice.Point {
	buf = append(buf, lattice.Point{X: v.X, Y: v.Y, Z: v.Z, T: t})
	if v.X > 0 {
		buf = append(buf, lattice.Point{X: v.X - 1, Y: v.Y, Z: v.Z, T: t})
	}
	if v.X < g.Side-1 {
		buf = append(buf, lattice.Point{X: v.X + 1, Y: v.Y, Z: v.Z, T: t})
	}
	if v.Y > 0 {
		buf = append(buf, lattice.Point{X: v.X, Y: v.Y - 1, Z: v.Z, T: t})
	}
	if v.Y < g.Side-1 {
		buf = append(buf, lattice.Point{X: v.X, Y: v.Y + 1, Z: v.Z, T: t})
	}
	if v.Z > 0 {
		buf = append(buf, lattice.Point{X: v.X, Y: v.Y, Z: v.Z - 1, T: t})
	}
	if v.Z < g.Side-1 {
		buf = append(buf, lattice.Point{X: v.X, Y: v.Y, Z: v.Z + 1, T: t})
	}
	return buf
}

// Steps implements Graph.
func (g CubeGraph) Steps() int { return g.T }

// Nodes implements Graph.
func (g CubeGraph) Nodes() int { return g.Side * g.Side * g.Side }

// Domain returns the full computation domain of the dag (the bounding
// central Box6 clipped to V).
func (g CubeGraph) Domain() lattice.Domain { return lattice.Box6Around(g.Side, g.T) }

// Bounds implements Graph.
func (g CubeGraph) Bounds() lattice.Clip { return lattice.ClipAll3D(g.Side, g.T) }

// Program assigns values to a dag: inputs at t = 0 and a step rule above.
type Program interface {
	// Input returns the value of input vertex v (v.T == 0).
	Input(v lattice.Point) Value
	// Step computes the value of vertex v (v.T > 0) from the values of
	// its predecessors, in the order Graph.Preds returns them.
	Step(v lattice.Point, operands []Value) Value
}

// seenPool recycles the dense dedup set of Preboundary: the recursive
// space and execution walks call Preboundary for every partition node, and
// pooling keeps that from allocating (and zeroing) a fresh set per call.
// Sets are returned to the pool drained, so Reset is O(1).
var seenPool = sync.Pool{New: func() any { return &lattice.PointSet{} }}

// Preboundary returns Γin(U): the set of dag vertices outside the domain
// that are predecessors of vertices inside it (Section 3 of the paper).
// Only vertices of g count; stencil positions outside the machine are not
// generated by Preds and therefore never appear.
func Preboundary(g Graph, dom lattice.Domain) []lattice.Point {
	seen := seenPool.Get().(*lattice.PointSet)
	seen.Reset(lattice.NewIndexer(g.Bounds()))
	var out []lattice.Point
	var buf []lattice.Point
	dom.Points(func(p lattice.Point) bool {
		buf = g.Preds(p, buf[:0])
		for _, q := range buf {
			if !dom.Contains(q) && seen.Add(q) {
				out = append(out, q)
			}
		}
		return true
	})
	for _, q := range out {
		seen.Remove(q)
	}
	seenPool.Put(seen)
	return out
}

// LiveOut returns the vertices of the domain whose values remain needed
// after the domain has been executed: those with a successor outside the
// domain, plus the final-layer vertices (t = Steps()-1), which are the
// computation's outputs. This is the set a simulation must persist when it
// finishes a domain (the generalization of the paper's
// "Ui ∩ Γin(Ui+1 ∪ ... ∪ Uq)" copy-out step in Proposition 2).
func LiveOut(g Graph, dom lattice.Domain) []lattice.Point {
	var out []lattice.Point
	var buf []lattice.Point
	last := g.Steps() - 1
	dom.Points(func(p lattice.Point) bool {
		if p.T == last {
			out = append(out, p)
			return true
		}
		buf = g.Succs(p, buf[:0])
		for _, q := range buf {
			if !dom.Contains(q) {
				out = append(out, p)
				break
			}
		}
		return true
	})
	return out
}

// IsTopologicalOrder reports whether order is a valid execution order of
// exactly the given vertex set: every vertex appears once, and every
// predecessor inside the set appears earlier.
func IsTopologicalOrder(g Graph, order []lattice.Point) bool {
	ix := lattice.NewIndexer(g.Bounds())
	pos := lattice.NewAddrTable(ix)
	for i, p := range order {
		if !ix.Contains(p) {
			// Not a vertex of g: it can have no in-set predecessors and
			// cannot collide with any vertex index, but duplicates of it
			// would need a side table; reject such orders outright.
			return false
		}
		if _, dup := pos.Get(p); dup {
			return false
		}
		pos.Set(p, i)
	}
	var buf []lattice.Point
	for i, p := range order {
		buf = g.Preds(p, buf[:0])
		for _, q := range buf {
			if j, in := pos.Get(q); in && j > i {
				return false
			}
		}
	}
	return true
}

// Reference executes the full dag directly, layer by layer, and returns
// the values of the final layer (t = Steps()-1) indexed by node: for
// LineGraph index x; for MeshGraph index y*Side + x. This is the
// infinitely-fast executor used as ground truth by every simulation.
func Reference(g Graph, prog Program) []Value {
	switch gr := g.(type) {
	case LineGraph:
		return referenceLine(gr, prog)
	case MeshGraph:
		return referenceMesh(gr, prog)
	case CubeGraph:
		return referenceCube(gr, prog)
	default:
		panic(fmt.Sprintf("dag: Reference does not support %T", g))
	}
}

func referenceCube(g CubeGraph, prog Program) []Value {
	s := g.Side
	idx := func(x, y, z int) int { return (z*s+y)*s + x }
	cur := make([]Value, s*s*s)
	for z := 0; z < s; z++ {
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				cur[idx(x, y, z)] = prog.Input(lattice.Point{X: x, Y: y, Z: z})
			}
		}
	}
	next := make([]Value, s*s*s)
	ops := make([]Value, 0, 7)
	var buf []lattice.Point
	for t := 1; t < g.T; t++ {
		for z := 0; z < s; z++ {
			for y := 0; y < s; y++ {
				for x := 0; x < s; x++ {
					v := lattice.Point{X: x, Y: y, Z: z, T: t}
					buf = g.Preds(v, buf[:0])
					ops = ops[:0]
					for _, q := range buf {
						ops = append(ops, cur[idx(q.X, q.Y, q.Z)])
					}
					next[idx(x, y, z)] = prog.Step(v, ops)
				}
			}
		}
		cur, next = next, cur
	}
	return cur
}

func referenceLine(g LineGraph, prog Program) []Value {
	cur := make([]Value, g.N)
	for x := 0; x < g.N; x++ {
		cur[x] = prog.Input(lattice.Point{X: x})
	}
	next := make([]Value, g.N)
	ops := make([]Value, 0, 3)
	var buf []lattice.Point
	for t := 1; t < g.T; t++ {
		for x := 0; x < g.N; x++ {
			v := lattice.Point{X: x, T: t}
			buf = g.Preds(v, buf[:0])
			ops = ops[:0]
			for _, q := range buf {
				ops = append(ops, cur[q.X])
			}
			next[x] = prog.Step(v, ops)
		}
		cur, next = next, cur
	}
	return cur
}

func referenceMesh(g MeshGraph, prog Program) []Value {
	s := g.Side
	cur := make([]Value, s*s)
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			cur[y*s+x] = prog.Input(lattice.Point{X: x, Y: y})
		}
	}
	next := make([]Value, s*s)
	ops := make([]Value, 0, 5)
	var buf []lattice.Point
	for t := 1; t < g.T; t++ {
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				v := lattice.Point{X: x, Y: y, T: t}
				buf = g.Preds(v, buf[:0])
				ops = ops[:0]
				for _, q := range buf {
					ops = append(ops, cur[q.Y*s+q.X])
				}
				next[y*s+x] = prog.Step(v, ops)
			}
		}
		cur, next = next, cur
	}
	return cur
}
