package perm

import "testing"

func BenchmarkForward(b *testing.B) {
	pm := New(1024, 16)
	for i := 0; i < b.N; i++ {
		if pm.Forward(i%1024) < 0 {
			b.Fatal("negative")
		}
	}
}

func BenchmarkTable(b *testing.B) {
	pm := New(4096, 64)
	for i := 0; i < b.N; i++ {
		if len(pm.Table()) != 4096 {
			b.Fatal("wrong length")
		}
	}
}
