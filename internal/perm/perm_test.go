package perm

import (
	"testing"
	"testing/quick"
)

func TestNewPanics(t *testing.T) {
	for _, c := range [][2]int{{4, 0}, {4, 8}, {9, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c[0], c[1])
				}
			}()
			New(c[0], c[1])
		}()
	}
}

func TestForwardIsPermutation(t *testing.T) {
	pm := New(12, 4)
	seen := make(map[int]bool)
	for i := 0; i < 12; i++ {
		j := pm.Forward(i)
		if j < 0 || j >= 12 || seen[j] {
			t.Fatalf("Forward not a permutation at %d -> %d", i, j)
		}
		seen[j] = true
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, c := range [][2]int{{12, 4}, {16, 4}, {8, 8}, {20, 5}, {6, 1}} {
		pm := New(c[0], c[1])
		for i := 0; i < pm.Q; i++ {
			if got := pm.Inverse(pm.Forward(i)); got != i {
				t.Fatalf("q=%d p=%d: Inverse(Forward(%d)) = %d", c[0], c[1], i, got)
			}
			if got := pm.Forward(pm.Inverse(i)); got != i {
				t.Fatalf("q=%d p=%d: Forward(Inverse(%d)) = %d", c[0], c[1], i, got)
			}
		}
	}
}

func TestPaperExampleSmall(t *testing.T) {
	// q = 8, p = 2: segments of I are (0,1) (2,3) (4,5) (6,7);
	// π1 reverses odd segments: 0,1, 3,2, 4,5, 7,6.
	// π2 is a 4-way shuffle (transpose of 4x2): positions (seg,off) ->
	// off*4+seg: [0,1,3,2,4,5,7,6] -> value at new index:
	// new[off*4+seg] = old[seg*2+off].
	pm := New(8, 2)
	// Forward(i) = position of strip i after both permutations.
	want := map[int]int{0: 0, 1: 4, 3: 1, 2: 5, 4: 2, 5: 6, 7: 3, 6: 7}
	for i, w := range want {
		if got := pm.Forward(i); got != w {
			t.Errorf("Forward(%d) = %d, want %d", i, got, w)
		}
	}
}

// Paper property 1: initially consecutive indices are consecutive or at
// distance q/p in the rearranged array.
func TestPropertyNeighborDistances(t *testing.T) {
	f := func(qRaw, pRaw uint8) bool {
		p := int(pRaw%6) + 1
		q := p * (int(qRaw%6) + 1)
		pm := New(q, p)
		k := q / p
		for i := 0; i+1 < q; i++ {
			d := pm.NeighborDistance(i)
			if d != 1 && d != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Paper property 2: each processor's local block of q/p rearranged strips
// contains exactly one strip from every original segment.
func TestPropertyOnePerSegment(t *testing.T) {
	f := func(qRaw, pRaw uint8) bool {
		p := int(pRaw%6) + 1
		q := p * (int(qRaw%6) + 1)
		pm := New(q, p)
		k := q / p
		for j := 0; j < p; j++ {
			lo, hi := pm.SegmentOfProcessor(j)
			if hi-lo != k {
				return false
			}
			segSeen := make(map[int]bool)
			for pos := lo; pos < hi; pos++ {
				orig := pm.Inverse(pos)
				seg := orig / p
				if segSeen[seg] {
					return false
				}
				segSeen[seg] = true
			}
			if len(segSeen) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableMatchesForward(t *testing.T) {
	pm := New(20, 4)
	tab := pm.Table()
	for i, v := range tab {
		if v != pm.Forward(i) {
			t.Fatalf("Table[%d] = %d, Forward = %d", i, v, pm.Forward(i))
		}
	}
}

func TestApply(t *testing.T) {
	pm := New(8, 2)
	data := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	out := Apply(pm, data)
	for i, s := range data {
		if out[pm.Forward(i)] != s {
			t.Fatalf("Apply misplaced %q", s)
		}
	}
}

func TestApplyLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Apply(New(8, 2), []int{1, 2, 3})
}

func TestIdentityWhenPEqualsQ(t *testing.T) {
	// p = q: single-strip segments, q/p = 1: everything stays adjacent.
	pm := New(6, 6)
	for i := 0; i < 6; i++ {
		if pm.Forward(i) != i {
			t.Fatalf("p=q should be identity, Forward(%d) = %d", i, pm.Forward(i))
		}
	}
}

// TestMaxAdjacentDisplacementIsQOverP certifies the distance the
// multiprocessor simulation charges for Regime 1 relocations and
// cooperating-mode exchanges: for every (q, p) the worst displacement
// between originally adjacent strips is exactly q/p (property 1), and
// every individual displacement is either 1 or q/p.
func TestMaxAdjacentDisplacementIsQOverP(t *testing.T) {
	for _, tc := range []struct{ q, p int }{
		{4, 2}, {8, 2}, {8, 4}, {16, 4}, {32, 8}, {64, 4}, {6, 3}, {12, 4},
		{8, 8}, {5, 5}, // q == p: identity permutation, displacement 1 = q/p
	} {
		pm := New(tc.q, tc.p)
		want := tc.q / tc.p
		if got := pm.MaxAdjacentDisplacement(); got != want {
			t.Errorf("q=%d p=%d: MaxAdjacentDisplacement = %d, want q/p = %d", tc.q, tc.p, got, want)
		}
		for i := 0; i+1 < tc.q; i++ {
			if d := pm.NeighborDistance(i); d != 1 && d != want {
				t.Errorf("q=%d p=%d: NeighborDistance(%d) = %d, want 1 or %d", tc.q, tc.p, i, d, want)
			}
		}
	}
}
