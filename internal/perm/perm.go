// Package perm implements the memory-rearrangement permutation π = π2·π1
// of Section 4.2 of Bilardi & Preparata (SPAA 1995), the enabling trick of
// the multiprocessor simulation (Theorem 4).
//
// The guest's initial data is viewed as q vertical strips of width s
// (n = s·q), indexed 0..q-1. The index array I is cut into q/p segments of
// length p. Then:
//
//   - π1 reverses the order of the elements inside every odd-indexed
//     segment (a boustrophedon fold), and
//   - π2 performs a (q/p)-way shuffle: viewing π1(I) as a (q/p) × p matrix
//     stored row-major, it transposes it, producing p segments of length
//     q/p.
//
// The two properties the paper derives — and this package tests — are:
//
//  1. indices adjacent in I end up either adjacent or exactly q/p apart in
//     π(I) (so guest near-neighbor traffic maps to distance ≤ (q/p)·s·m
//     host memory, a factor p closer than without rearrangement), and
//  2. every final segment of length q/p contains exactly one index from
//     each original segment (so each processor has, within its local
//     reach, a representative strip of every region of the guest).
package perm

// Permutation is the rearrangement π = π2·π1 for q strips on p processors.
type Permutation struct {
	// Q is the number of strips; P the number of processors. P must
	// divide Q.
	Q, P int
}

// New returns the rearrangement permutation for q strips on p processors.
// It panics unless 1 <= p <= q and p divides q.
func New(q, p int) Permutation {
	if p < 1 || q < p || q%p != 0 {
		panic("perm: need 1 <= p <= q with p | q")
	}
	return Permutation{Q: q, P: p}
}

// pi1 applies the odd-segment reversal.
func (pm Permutation) pi1(i int) int {
	seg, off := i/pm.P, i%pm.P
	if seg%2 == 1 {
		off = pm.P - 1 - off
	}
	return seg*pm.P + off
}

// pi1 is an involution, so its inverse is itself.

// pi2 applies the (q/p)-way shuffle: (seg, off) -> off*(q/p) + seg.
func (pm Permutation) pi2(i int) int {
	seg, off := i/pm.P, i%pm.P
	return off*(pm.Q/pm.P) + seg
}

// pi2inv inverts the shuffle.
func (pm Permutation) pi2inv(i int) int {
	k := pm.Q / pm.P
	off, seg := i/k, i%k
	return seg*pm.P + off
}

// Forward maps original strip index i to its rearranged position π(i).
func (pm Permutation) Forward(i int) int {
	pm.check(i)
	return pm.pi2(pm.pi1(i))
}

// Inverse maps a rearranged position back to the original strip index.
func (pm Permutation) Inverse(i int) int {
	pm.check(i)
	return pm.pi1(pm.pi2inv(i)) // π1 is an involution
}

func (pm Permutation) check(i int) {
	if i < 0 || i >= pm.Q {
		panic("perm: index out of range")
	}
}

// Table returns the full forward mapping as a slice: Table()[i] = π(i).
func (pm Permutation) Table() []int {
	t := make([]int, pm.Q)
	for i := range t {
		t[i] = pm.Forward(i)
	}
	return t
}

// SegmentOfProcessor returns the half-open range of rearranged positions
// local to processor j: [j·q/p, (j+1)·q/p). Processor j of the host sits at
// the left edge of this block of strips.
func (pm Permutation) SegmentOfProcessor(j int) (lo, hi int) {
	if j < 0 || j >= pm.P {
		panic("perm: processor out of range")
	}
	k := pm.Q / pm.P
	return j * k, (j + 1) * k
}

// MaxAdjacentDisplacement reports the maximum distance in the rearranged
// array between the images of originally adjacent strips:
// max_i |π(i+1) − π(i)|. Property 1 of Section 4.2 bounds this by q/p,
// which is what licenses charging Theorem 4's Regime 1 relocations and
// cooperating-mode exchanges at distance (q/p)·s = n/p; computing the
// bound from the permutation itself (by enumeration) certifies the charge
// instead of asserting it. For q == p the permutation is the identity and
// the displacement is 1 = q/p.
func (pm Permutation) MaxAdjacentDisplacement() int {
	mx := 1 // a single strip (q == 1) never moves
	for i := 0; i+1 < pm.Q; i++ {
		if d := pm.NeighborDistance(i); d > mx {
			mx = d
		}
	}
	return mx
}

// NeighborDistance reports the distance in the rearranged array between the
// positions of originally adjacent strips i and i+1. The paper's property 1
// guarantees this is 1 or q/p.
func (pm Permutation) NeighborDistance(i int) int {
	a, b := pm.Forward(i), pm.Forward(i+1)
	if a > b {
		return a - b
	}
	return b - a
}

// Apply permutes data (one element per strip) into a new slice out with
// out[π(i)] = data[i]. It panics if len(data) != Q.
func Apply[T any](pm Permutation, data []T) []T {
	if len(data) != pm.Q {
		panic("perm: data length mismatch")
	}
	out := make([]T, pm.Q)
	for i, v := range data {
		out[pm.Forward(i)] = v
	}
	return out
}
