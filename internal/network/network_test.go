package network

import (
	"testing"
	"testing/quick"

	"bsmp/internal/hram"
)

// caProg is a width-1-memory cellular-automaton-like program with exactly
// verifiable integer dynamics.
type caProg struct{}

func (caProg) Init(node int, mem []hram.Word) hram.Word {
	for i := range mem {
		mem[i] = hram.Word(node*31+i) | 1
	}
	return hram.Word(node)*2654435761 + 99
}

func (caProg) Address(node, step, memSize int) int {
	return (node + step) % memSize
}

func (caProg) Step(node, step int, cell hram.Word, prev []hram.Word) (hram.Word, hram.Word) {
	var s hram.Word = cell
	for i, p := range prev {
		s = s*31 + p*hram.Word(i+1)
	}
	return s + hram.Word(step), s ^ cell
}

func TestNewValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad d":        func() { New(4, 8, 8, 1) },
		"p > n":        func() { New(1, 4, 8, 1) },
		"p zero":       func() { New(1, 8, 0, 1) },
		"m zero":       func() { New(1, 8, 8, 0) },
		"p not divide": func() { New(1, 9, 2, 1) },
		"d2 p square":  func() { New(2, 16, 8, 1) },
		"d2 n square":  func() { New(2, 12, 4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGeometry1D(t *testing.T) {
	ma := New(1, 16, 4, 2)
	if ma.NodeMemory() != 8 {
		t.Errorf("NodeMemory = %d, want 8", ma.NodeMemory())
	}
	if ma.Spacing() != 4 {
		t.Errorf("Spacing = %v, want 4", ma.Spacing())
	}
	if d := ma.Distance(0, 3); d != 12 {
		t.Errorf("Distance(0,3) = %v, want 12", d)
	}
	nb := ma.Neighbors(0, nil)
	if len(nb) != 1 || nb[0] != 1 {
		t.Errorf("Neighbors(0) = %v, want [1]", nb)
	}
	nb = ma.Neighbors(2, nil)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 3 {
		t.Errorf("Neighbors(2) = %v, want [1 3]", nb)
	}
}

func TestGeometry2D(t *testing.T) {
	ma := New(2, 64, 16, 1)
	if ma.Side() != 4 {
		t.Fatalf("Side = %d, want 4", ma.Side())
	}
	if ma.Spacing() != 2 {
		t.Errorf("Spacing = %v, want (64/16)^(1/2) = 2", ma.Spacing())
	}
	// Node 5 is at (1, 1).
	gx, gy := ma.Coord(5)
	if gx != 1 || gy != 1 {
		t.Errorf("Coord(5) = (%d,%d), want (1,1)", gx, gy)
	}
	if ma.Index(gx, gy) != 5 {
		t.Errorf("Index(Coord(5)) != 5")
	}
	if d := ma.Distance(0, 5); d != 4 {
		t.Errorf("Distance(0,5) = %v, want 4", d)
	}
	nb := ma.Neighbors(5, nil)
	want := []int{4, 6, 1, 9}
	if len(nb) != 4 {
		t.Fatalf("Neighbors(5) = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(5) = %v, want %v", nb, want)
		}
	}
	// Corner has 2 neighbors.
	if nb := ma.Neighbors(0, nil); len(nb) != 2 {
		t.Errorf("corner Neighbors = %v, want 2 entries", nb)
	}
}

func TestSendChargesDistance(t *testing.T) {
	ma := New(1, 12, 4, 1)
	ma.Send(0, 2, 1)
	// Distance(0,2) = 2*3 = 6; arrival = 1 (send) + 6.
	if got := ma.Bank.Proc(2).Now(); got != 7 {
		t.Errorf("receiver clock %v, want 7", got)
	}
}

func TestRunGuestNeedsFullParallel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunGuest on P < N did not panic")
		}
	}()
	ma := New(1, 8, 2, 1)
	RunGuest(ma, caProg{}, 1)
}

func TestRunGuestMatchesPure(t *testing.T) {
	for _, tc := range []struct{ d, n, m, steps int }{
		{1, 8, 1, 8},
		{1, 8, 4, 12},
		{2, 16, 1, 4},
		{2, 16, 3, 6},
	} {
		ma := New(tc.d, tc.n, tc.n, tc.m)
		got, elapsed := RunGuest(ma, caProg{}, tc.steps)
		want, _ := RunGuestPure(tc.d, tc.n, tc.m, tc.steps, caProg{})
		if len(got) != len(want) {
			t.Fatalf("%+v: length mismatch", tc)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%+v: node %d: got %d, want %d", tc, i, got[i], want[i])
			}
		}
		if elapsed <= 0 {
			t.Fatalf("%+v: elapsed %v", tc, elapsed)
		}
	}
}

func TestRunGuestTimeLinearInSteps(t *testing.T) {
	// The guest machine runs in Θ(1) per step: Tn(2T) ≈ 2·Tn(T).
	run := func(steps int) float64 {
		ma := New(1, 16, 16, 4)
		_, el := RunGuest(ma, caProg{}, steps)
		return float64(el)
	}
	t8, t16 := run(8), run(16)
	ratio := t16 / t8
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("doubling steps scaled time by %v, want ~2", ratio)
	}
}

func TestRunGuestStepCostConstantInN(t *testing.T) {
	// Per the paper's premise, a guest step costs O(1) regardless of n:
	// worst-case private access (f(m)=1) is of the order of the neighbor
	// exchange (spacing 1).
	perStep := func(n int) float64 {
		ma := New(1, n, n, 4)
		_, el := RunGuest(ma, caProg{}, 8)
		return float64(el) / 8
	}
	a, b := perStep(8), perStep(64)
	if b/a > 1.5 {
		t.Errorf("per-step guest cost grew with n: %v -> %v", a, b)
	}
}

func TestRunGuestFinalMemoriesMatch(t *testing.T) {
	// The machine's H-RAM memories after RunGuest equal the pure run's.
	d, n, m, steps := 1, 8, 4, 10
	ma := New(d, n, n, m)
	RunGuest(ma, caProg{}, steps)
	_, mems := RunGuestPure(d, n, m, steps, caProg{})
	for v := 0; v < n; v++ {
		for a := 0; a < ma.NodeMemory(); a++ {
			if got, want := ma.Nodes[v].Peek(a), mems[v][a]; got != want {
				t.Fatalf("node %d cell %d: got %d, want %d", v, a, got, want)
			}
		}
	}
}

// Property: Distance is a metric on node indices (symmetry, identity,
// triangle inequality) for all three dimensions. The machine delegates
// to its topology, so this pins the seam; the topology package runs the
// same property over the bare meshes and the FaultMask decorator.
func TestPropertyDistanceMetric(t *testing.T) {
	machines := []*Machine{New(1, 16, 16, 1), New(2, 64, 16, 1), New(3, 512, 64, 1)}
	f := func(raw [3]uint8, which uint8) bool {
		ma := machines[int(which)%len(machines)]
		i := int(raw[0]) % ma.P
		j := int(raw[1]) % ma.P
		k := int(raw[2]) % ma.P
		dij, dji := ma.Distance(i, j), ma.Distance(j, i)
		if dij != dji {
			return false
		}
		if (i == j) != (dij == 0) {
			return false
		}
		return ma.Distance(i, k) <= dij+ma.Distance(j, k)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Index and Coord are inverse bijections.
func TestPropertyIndexCoordInverse(t *testing.T) {
	f := func(raw uint8, d2 bool) bool {
		var ma *Machine
		if d2 {
			ma = New(2, 144, 36, 1)
		} else {
			ma = New(1, 20, 20, 1)
		}
		i := int(raw) % ma.P
		gx, gy := ma.Coord(i)
		return ma.Index(gx, gy) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunGuestParallelMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 100} {
		serial := New(1, 64, 64, 4)
		outS, elS := RunGuest(serial, caProg{}, 16)
		par := New(1, 64, 64, 4)
		outP, elP := RunGuestParallel(par, caProg{}, 16, workers)
		if elS != elP {
			t.Fatalf("workers=%d: elapsed %v vs %v", workers, elS, elP)
		}
		for i := range outS {
			if outS[i] != outP[i] {
				t.Fatalf("workers=%d: node %d: %d vs %d", workers, i, outS[i], outP[i])
			}
		}
		// Per-node clocks identical too.
		for i := 0; i < serial.P; i++ {
			if serial.Bank.Proc(i).Now() != par.Bank.Proc(i).Now() {
				t.Fatalf("workers=%d: node %d clock mismatch", workers, i)
			}
		}
	}
}

func TestRunGuestParallel2D(t *testing.T) {
	serial := New(2, 64, 64, 2)
	outS, _ := RunGuest(serial, caProg{}, 8)
	par := New(2, 64, 64, 2)
	outP, _ := RunGuestParallel(par, caProg{}, 8, 0)
	for i := range outS {
		if outS[i] != outP[i] {
			t.Fatalf("node %d mismatch", i)
		}
	}
}

// The hooked executors duplicate the unhooked step loops for performance
// (see RunGuestHook's doc comment); this pins the two copies together:
// with a live always-nil hook, outputs, memories, virtual times, and
// per-node clocks are bit-identical, and the hook observes every step.
func TestHookedExecutorsMatchUnhooked(t *testing.T) {
	const d, n, m, steps = 1, 32, 4, 16

	base := New(d, n, n, m)
	outB, timeB := RunGuest(base, caProg{}, steps)
	hooked := New(d, n, n, m)
	calls := 0
	outH, timeH, err := RunGuestHook(hooked, caProg{}, steps, func(vertices int) error {
		calls++
		if vertices != n {
			t.Fatalf("hook vertices = %d, want %d", vertices, n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != steps {
		t.Fatalf("hook ran %d times, want %d", calls, steps)
	}
	if timeH != timeB {
		t.Fatalf("hooked time %v != unhooked %v", timeH, timeB)
	}
	for i := range outB {
		if outB[i] != outH[i] {
			t.Fatalf("node %d broadcast mismatch", i)
		}
		if base.Bank.Proc(i).Now() != hooked.Bank.Proc(i).Now() {
			t.Fatalf("node %d clock mismatch", i)
		}
	}

	outP, memsP := RunGuestPure(d, n, m, steps, caProg{})
	outPH, memsPH, err := RunGuestPureHook(d, n, m, steps, caProg{}, func(int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range outP {
		if outP[i] != outPH[i] {
			t.Fatalf("pure node %d broadcast mismatch", i)
		}
		for a := range memsP[i] {
			if memsP[i][a] != memsPH[i][a] {
				t.Fatalf("pure node %d mem[%d] mismatch", i, a)
			}
		}
	}
}
