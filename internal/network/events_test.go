package network

import (
	"testing"

	"bsmp/internal/cost"
)

// TestRunGuestEventsMatchesPure pins the event-driven executor's
// outputs and final memories against the functional ground truth for
// all dimensions, with and without a delay model: delays move virtual
// times, never values.
func TestRunGuestEventsMatchesPure(t *testing.T) {
	for _, tc := range []struct{ d, n, m, steps int }{
		{1, 8, 1, 8},
		{1, 8, 4, 12},
		{2, 16, 1, 4},
		{2, 16, 3, 6},
		{3, 27, 2, 5},
	} {
		for _, theta := range []float64{1, 2.5} {
			ma := New(tc.d, tc.n, tc.n, tc.m)
			dm, err := cost.NewThetaModel(theta, 42)
			if err != nil {
				t.Fatal(err)
			}
			ma.Bank.SetDelayModel(dm)
			got, elapsed := RunGuestEvents(ma, caProg{}, tc.steps)
			want, mems := RunGuestPure(tc.d, tc.n, tc.m, tc.steps, caProg{})
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%+v theta=%v: node %d: got %d, want %d", tc, theta, i, got[i], want[i])
				}
			}
			for v := 0; v < tc.n; v++ {
				for a := 0; a < ma.NodeMemory(); a++ {
					if ma.Nodes[v].Peek(a) != mems[v][a] {
						t.Fatalf("%+v theta=%v: node %d cell %d mismatch", tc, theta, v, a)
					}
				}
			}
			if elapsed <= 0 {
				t.Fatalf("%+v theta=%v: elapsed %v", tc, theta, elapsed)
			}
		}
	}
}

// TestRunGuestEventsLockstepBound checks the asynchronous-advantage
// direction: without delays, dropping the per-step barrier can only
// help — the event-driven makespan never exceeds the synchronous one.
func TestRunGuestEventsLockstepBound(t *testing.T) {
	for _, tc := range []struct{ d, n, m, steps int }{
		{1, 16, 4, 16},
		{2, 16, 2, 8},
	} {
		sync := New(tc.d, tc.n, tc.n, tc.m)
		_, tSync := RunGuest(sync, caProg{}, tc.steps)
		ev := New(tc.d, tc.n, tc.n, tc.m)
		_, tEv := RunGuestEvents(ev, caProg{}, tc.steps)
		if tEv > tSync {
			t.Fatalf("%+v: event makespan %v > synchronous %v", tc, tEv, tSync)
		}
		if tEv <= 0 {
			t.Fatalf("%+v: event makespan %v", tc, tEv)
		}
	}
}

// TestRunGuestEventsMonotoneInTheta checks graceful degradation at the
// network layer: with a fixed seed, stretching the delay bound never
// shrinks the makespan.
func TestRunGuestEventsMonotoneInTheta(t *testing.T) {
	run := func(theta float64) cost.Time {
		ma := New(2, 16, 16, 2)
		dm, err := cost.NewThetaModel(theta, 7)
		if err != nil {
			t.Fatal(err)
		}
		ma.Bank.SetDelayModel(dm)
		_, el := RunGuestEvents(ma, caProg{}, 12)
		return el
	}
	prev := cost.Time(0)
	for _, theta := range []float64{1, 1.5, 2, 4, 8} {
		el := run(theta)
		if el < prev {
			t.Fatalf("theta=%v: makespan %v < previous %v", theta, el, prev)
		}
		prev = el
	}
	// And Θ = 1 through the model equals no model at all.
	ma := New(2, 16, 16, 2)
	_, plain := RunGuestEvents(ma, caProg{}, 12)
	if got := run(1); got != plain {
		t.Fatalf("theta=1 makespan %v != modelless %v", got, plain)
	}
}

// TestRunGuestEventsDeterministic checks that two runs with the same
// seed and Θ produce identical per-node virtual clocks.
func TestRunGuestEventsDeterministic(t *testing.T) {
	run := func() *Machine {
		ma := New(1, 16, 16, 4)
		dm, err := cost.NewThetaModel(3, 1234)
		if err != nil {
			t.Fatal(err)
		}
		ma.Bank.SetDelayModel(dm)
		RunGuestEvents(ma, caProg{}, 10)
		return ma
	}
	a, b := run(), run()
	for i := 0; i < a.P; i++ {
		if a.Bank.Proc(i).Now() != b.Bank.Proc(i).Now() {
			t.Fatalf("node %d clock differs across identical runs", i)
		}
	}
}

func TestRunGuestEventsNeedsFullParallel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunGuestEvents on P < N did not panic")
		}
	}()
	ma := New(1, 8, 2, 1)
	RunGuestEvents(ma, caProg{}, 1)
}
