package network

import "testing"

func BenchmarkRunGuestStep(b *testing.B) {
	ma := New(1, 256, 256, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunGuest(ma, caProg{}, 1)
	}
}

func BenchmarkNeighbors2D(b *testing.B) {
	ma := New(2, 1024, 1024, 1)
	var buf []int
	for i := 0; i < b.N; i++ {
		buf = ma.Neighbors(i%1024, buf[:0])
		if len(buf) == 0 {
			b.Fatal("no neighbors")
		}
	}
}
