package network

import (
	"fmt"

	"bsmp/internal/cost"
	"bsmp/internal/hram"
	"bsmp/internal/sched"
)

// RunGuestEvents executes prog for steps steps on the fully parallel
// machine (P == N required) with message delivery rescheduled through
// an event queue instead of the per-step phase barrier: node v executes
// step t as soon as its own step t-1 is done and every neighbor's
// step t-1 broadcast has *arrived*, where an arrival is a queue event
// at the sender's completion time plus the (possibly Θ-stretched, via
// the Bank's DelayModel) link distance.
//
// Semantics versus RunGuest: outputs are identical (the dataflow
// dependencies are the same, pinned against RunGuestPure), but the cost
// accounting is asynchronous — link latency shows up as arrival delay
// (Sync idling on the receiver) rather than as a per-step Message
// charge followed by a global barrier, and no barrier ever runs. Under
// the lockstep delay model the makespan is therefore at most RunGuest's
// (nodes with cheap steps run ahead instead of stalling at the
// barrier); under a ThetaModel every link is stretched by a factor in
// [1, Θ], and the makespan is monotone non-decreasing in Θ because each
// draw is fixed by (seed, proc, seq) independent of Θ.
//
// Dispatch is deterministic: all events are scheduled in fixed loop
// order, so the queue's (time, proc, seq) order — and every virtual
// time — is a pure function of (prog, steps, delay model).
func RunGuestEvents(ma *Machine, prog Program, steps int) ([]hram.Word, cost.Time) {
	if ma.P != ma.N {
		panic(fmt.Sprintf("network: RunGuestEvents needs P == N, got P=%d N=%d", ma.P, ma.N))
	}
	start := ma.Elapsed()
	memSize := ma.NodeMemory()
	n := ma.P

	// Initial loading is free (Poke), as in the synchronous executors.
	bufs := [2][]hram.Word{make([]hram.Word, n), make([]hram.Word, n)}
	raw := make([]hram.Word, memSize)
	for i := 0; i < n; i++ {
		for a := range raw {
			raw[a] = 0
		}
		bufs[0][i] = prog.Init(i, raw)
		for a, w := range raw {
			ma.Nodes[i].Poke(a, w)
		}
	}

	// Adjacency and spacing come straight from the machine's topology —
	// the event engine never does its own mesh math.
	topo := ma.Topo()
	nbr := neighborLists(topo, n)

	// cnt[v][t&1] counts the deliveries still missing before v can run
	// step t. Neighbor skew is at most one step (step t needs the
	// neighbor's t-1 value), so two parity slots cover every in-flight
	// step. Executing step t re-arms slot t&1 for step t+2.
	cnt := make([][2]int, n)
	for v := range cnt {
		cnt[v][0] = len(nbr[v]) + 1 // step 2's deliveries
	}

	q := sched.New()
	ops := make([]hram.Word, 0, 7)
	spacing := topo.Spacing()

	var deliver func(w, t int) func()
	var exec func(v, t int)
	exec = func(v, t int) {
		m := ma.Bank.Proc(v)
		// The last input arrived at the current instant; waiting for it
		// is the receiver's stall, charged to Sync.
		m.Idle(q.Now())
		addr := prog.Address(v, t, memSize)
		cell := ma.Nodes[v].Read(addr)
		prev := bufs[(t-1)&1]
		ops = ops[:0]
		ops = append(ops, prev[v])
		for _, u := range nbr[v] {
			ops = append(ops, prev[u])
		}
		out, cellOut := prog.Step(v, t, cell, ops)
		ma.Nodes[v].Op()
		ma.Nodes[v].Write(addr, cellOut)
		bufs[t&1][v] = out
		cnt[v][t&1] = len(nbr[v]) + 1 // re-arm for step t+2
		if t >= steps {
			return
		}
		// Broadcast step t's value: the self "delivery" is immediate,
		// each link pays its (possibly stretched) distance.
		done := m.Now()
		q.At(done, v, deliver(v, t+1))
		for _, u := range nbr[v] {
			q.At(done+ma.Bank.StretchDistance(v, spacing), u, deliver(u, t+1))
		}
	}
	deliver = func(w, t int) func() {
		return func() {
			cnt[w][t&1]--
			if cnt[w][t&1] == 0 {
				exec(w, t)
			}
		}
	}

	if steps >= 1 {
		// Step 1's inputs (the Init broadcasts) are in place at time 0.
		for v := 0; v < n; v++ {
			v := v
			q.At(0, v, func() { exec(v, 1) })
		}
	}
	q.Run()

	// Final values live in the parity slot of the last executed step.
	out := make([]hram.Word, n)
	copy(out, bufs[steps&1])
	return out, ma.Elapsed() - start
}
