// Package network implements the parallel machines Md(n, p, m) of
// Definition 2 of Bilardi & Preparata (SPAA 1995): a d-dimensional
// near-neighbor interconnection of p (x/m)^(1/d)-H-RAMs, each with mn/p
// memory words, with near-neighbor geometric distance (n/p)^(1/d).
// M1(n, p, m) is the linear array; M2(n, p, m) the square mesh.
//
// The package provides the machine structure (per-node H-RAMs wired to a
// cost.Bank of virtual clocks plus distance-charged links) and the
// synchronous guest executor: running a network Program for T steps on the
// fully parallel machine Md(n, n, m), which defines the guest time Tn that
// every simulation's slowdown is measured against.
package network

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"bsmp/internal/cost"
	"bsmp/internal/hram"
	"bsmp/internal/topology"
)

// Machine is an Md(n, p, m).
type Machine struct {
	// D is the mesh dimension (1 or 2).
	D int
	// N is the machine volume: the guest-equivalent processor count.
	N int
	// P is the number of (CPU, memory-module) nodes; for D = 2 it must
	// be a perfect square.
	P int
	// M is the memory density: cells per unit of volume. Each node holds
	// M*N/P words.
	M int

	// Bank holds one virtual clock per node.
	Bank *cost.Bank
	// Nodes holds one H-RAM per node, sharing the Bank's meters.
	Nodes []*hram.Machine

	// topo is the host interconnection geometry. Every geometric method
	// of the machine (Coord/Index/Distance/Neighbors/Spacing/Side)
	// delegates here, so engines that hold a Machine consume the
	// topology seam without knowing it.
	topo topology.Topology
	// spacing caches topo.Spacing() for the per-vertex Message charge in
	// the guest executors (one interface call per vertex adds up).
	spacing float64
}

// New constructs Md(n, p, m). Constraints: d in {1, 2, 3}; 1 <= p <= n;
// m >= 1; p divides n; for d = 2 (resp. 3), p and n must be perfect
// squares (resp. cubes).
func New(d, n, p, m int, opts ...hram.Option) *Machine {
	if d < 1 || d > 3 {
		panic(fmt.Sprintf("network: dimension %d not in {1,2,3}", d))
	}
	if p < 1 || n < p {
		panic(fmt.Sprintf("network: need 1 <= p <= n, got p=%d n=%d", p, n))
	}
	if m < 1 {
		panic(fmt.Sprintf("network: density m=%d < 1", m))
	}
	if n%p != 0 {
		panic(fmt.Sprintf("network: p=%d must divide n=%d", p, n))
	}
	if d == 2 {
		if s := intSqrt(p); s*s != p {
			panic(fmt.Sprintf("network: d=2 needs square p, got %d", p))
		}
		if s := intSqrt(n); s*s != n {
			panic(fmt.Sprintf("network: d=2 needs square n, got %d", n))
		}
	}
	if d == 3 {
		if s := intCbrt(p); s*s*s != p {
			panic(fmt.Sprintf("network: d=3 needs cubic p, got %d", p))
		}
		if s := intCbrt(n); s*s*s != n {
			panic(fmt.Sprintf("network: d=3 needs cubic n, got %d", n))
		}
	}
	return NewOn(topology.NewMesh(d, n, p), n, m, opts...)
}

// NewOn constructs a machine over an explicit topology — the seam the
// fault-masked and future bus/partitioned interconnections plug into.
// The node count, dimension and spacing come from the topology; n is
// the machine volume (p | n required) and m the memory density.
func NewOn(topo topology.Topology, n, m int, opts ...hram.Option) *Machine {
	d, p := topo.Dim(), topo.Nodes()
	if p < 1 || n < p || n%p != 0 {
		panic(fmt.Sprintf("network: need 1 <= p <= n with p | n, got p=%d n=%d", p, n))
	}
	if m < 1 {
		panic(fmt.Sprintf("network: density m=%d < 1", m))
	}
	bank := cost.NewBank(p)
	nodes := make([]*hram.Machine, p)
	per := m * (n / p)
	f := hram.Standard(d, m)
	for i := range nodes {
		nodes[i] = hram.New(per, f, bank.Proc(i), opts...)
	}
	return &Machine{
		D: d, N: n, P: p, M: m,
		Bank: bank, Nodes: nodes,
		topo:    topo,
		spacing: topo.Spacing(),
	}
}

// Topo exposes the machine's interconnection geometry.
func (ma *Machine) Topo() topology.Topology { return ma.topo }

// NodeMemory reports the per-node memory size mn/p.
func (ma *Machine) NodeMemory() int { return ma.M * (ma.N / ma.P) }

// Spacing reports the geometric near-neighbor distance (n/p)^(1/d).
func (ma *Machine) Spacing() float64 { return ma.spacing }

// Side reports the mesh side sqrt(p) for d = 2, or p for d = 1.
func (ma *Machine) Side() int { return ma.topo.Side() }

// Coord maps node index i to grid coordinates: (i, 0) for d = 1,
// (i mod side, i div side) for d = 2. For d = 3 use Coord3.
func (ma *Machine) Coord(i int) (gx, gy int) { return ma.topo.Coord(i) }

// Coord3 maps node index i to full grid coordinates for any dimension.
func (ma *Machine) Coord3(i int) (gx, gy, gz int) { return ma.topo.Coord3(i) }

// Index maps grid coordinates to the node index; inverse of Coord.
func (ma *Machine) Index(gx, gy int) int { return ma.topo.Index(gx, gy) }

// Index3 maps full grid coordinates to the node index; inverse of Coord3.
func (ma *Machine) Index3(gx, gy, gz int) int { return ma.topo.Index3(gx, gy, gz) }

// Distance reports the geometric distance between nodes i and j
// (Manhattan grid distance times the node spacing, the routed wire length).
func (ma *Machine) Distance(i, j int) float64 { return ma.topo.Dist(i, j) }

// Neighbors appends the node indices adjacent to i (d = 1: left, right;
// d = 2: plus south, north; d = 3: plus down, up), clipped to the machine.
func (ma *Machine) Neighbors(i int, buf []int) []int { return ma.topo.Neighbors(i, buf) }

// neighborLists materializes every node's neighbor list once. The guest
// executors are per-vertex hot loops; enumerating adjacency up front
// replaces a topology call per vertex per step with a slice read, and
// the lists are identical every step (the geometry is static), so
// outputs and charges are unchanged.
func neighborLists(topo topology.Topology, n int) [][]int {
	nbr := make([][]int, n)
	for v := 0; v < n; v++ {
		nbr[v] = topo.Neighbors(v, nil)
	}
	return nbr
}

// Send transmits words from node i to node j, charging bounded-speed
// message time (distance latency plus unit-rate streaming) on the Bank.
func (ma *Machine) Send(i, j int, words int64) {
	ma.Bank.Send(i, j, ma.Distance(i, j), words)
}

// Elapsed reports the machine's completion time so far (the makespan
// across all node clocks).
func (ma *Machine) Elapsed() cost.Time { return ma.Bank.MaxNow() }

// Program is a synchronous network computation in the style of
// Definition 3: every node holds a private memory of NodeMemory() words
// and a broadcast value; at each step a node reads one addressed memory
// cell, combines it with the neighbors' previous broadcast values, then
// updates both the cell and its broadcast value.
type Program interface {
	// Init fills node's initial memory and returns its initial broadcast
	// value (the value of dag vertex (node, 0)).
	Init(node int, mem []hram.Word) hram.Word
	// Address selects the memory cell node reads and rewrites at step.
	// Must lie in [0, memSize).
	Address(node, step, memSize int) int
	// Step computes the node's new broadcast value and the new content
	// of the addressed cell, from the old cell value and the previous
	// broadcast values of [self, neighbors...] in Neighbors order.
	Step(node, step int, cell hram.Word, prev []hram.Word) (out, cellOut hram.Word)
}

// RunGuest executes prog for steps synchronous steps on the fully parallel
// machine (P == N required), with full cost accounting: per step each node
// charges the addressed access, one unit of compute, and the neighbor
// exchange at distance Spacing(); a barrier closes each step. It returns
// the final broadcast values and the elapsed virtual time.
//
// This is the guest computation of the paper's theorems: its elapsed time
// is the Tn in every slowdown ratio Tp/Tn.
func RunGuest(ma *Machine, prog Program, steps int) ([]hram.Word, cost.Time) {
	if ma.P != ma.N {
		panic(fmt.Sprintf("network: RunGuest needs P == N, got P=%d N=%d", ma.P, ma.N))
	}
	start := ma.Elapsed()
	memSize := ma.NodeMemory()
	b := make([]hram.Word, ma.P)
	raw := make([]hram.Word, memSize)
	for i := 0; i < ma.P; i++ {
		// Initial loading is free (Poke): inputs are assumed in place,
		// as in the paper's model where (v, 0) holds the initial value.
		for a := range raw {
			raw[a] = 0
		}
		b[i] = prog.Init(i, raw)
		for a, w := range raw {
			ma.Nodes[i].Poke(a, w)
		}
	}
	prevB := make([]hram.Word, ma.P)
	nbr := neighborLists(ma.topo, ma.P)
	ops := make([]hram.Word, 0, 5)
	for t := 1; t <= steps; t++ {
		copy(prevB, b)
		for v := 0; v < ma.P; v++ {
			addr := prog.Address(v, t, memSize)
			cell := ma.Nodes[v].Read(addr)
			ops = ops[:0]
			ops = append(ops, prevB[v])
			for _, u := range nbr[v] {
				ops = append(ops, prevB[u])
			}
			out, cellOut := prog.Step(v, t, cell, ops)
			ma.Nodes[v].Op()
			ma.Nodes[v].Write(addr, cellOut)
			// Neighbor exchange: receiving 2d values over distance
			// Spacing() in parallel costs one link traversal.
			ma.Bank.Proc(v).Charge(cost.Message, ma.Spacing())
			b[v] = out
		}
		ma.Bank.Barrier()
	}
	return b, ma.Elapsed() - start
}

// StepHook is polled by the hooked guest executors once per completed
// synchronous step, with the number of node-steps (vertices) just
// executed. Returning a non-nil error aborts the run with that error.
// Hooks run between steps and never touch the cost meters, so a run
// whose hook always returns nil is bit-identical to the unhooked one.
type StepHook func(vertices int) error

// RunGuestHook is RunGuest with an optional per-step hook (nil runs
// RunGuest itself). simulate uses the hook for cooperative cancellation
// and progress metering.
//
// The hooked loop below mirrors RunGuest's step loop verbatim and must
// stay in lockstep with it. The duplication is deliberate: folding the
// hook branch into RunGuest's loop costs ~10% on the replay-bound
// multiprocessor benchmarks even when the hook is nil — the extra exit
// path degrades register allocation for the inner vertex loop — so the
// nil case delegates to the pristine loop instead.
// TestHookedExecutorsMatchUnhooked pins the equivalence.
func RunGuestHook(ma *Machine, prog Program, steps int, hook StepHook) ([]hram.Word, cost.Time, error) {
	if hook == nil {
		b, t := RunGuest(ma, prog, steps)
		return b, t, nil
	}
	if ma.P != ma.N {
		panic(fmt.Sprintf("network: RunGuestHook needs P == N, got P=%d N=%d", ma.P, ma.N))
	}
	start := ma.Elapsed()
	memSize := ma.NodeMemory()
	b := make([]hram.Word, ma.P)
	raw := make([]hram.Word, memSize)
	for i := 0; i < ma.P; i++ {
		// Initial loading is free (Poke): inputs are assumed in place,
		// as in the paper's model where (v, 0) holds the initial value.
		for a := range raw {
			raw[a] = 0
		}
		b[i] = prog.Init(i, raw)
		for a, w := range raw {
			ma.Nodes[i].Poke(a, w)
		}
	}
	prevB := make([]hram.Word, ma.P)
	nbr := neighborLists(ma.topo, ma.P)
	ops := make([]hram.Word, 0, 5)
	for t := 1; t <= steps; t++ {
		if err := hook(ma.P); err != nil {
			return nil, 0, err
		}
		copy(prevB, b)
		for v := 0; v < ma.P; v++ {
			addr := prog.Address(v, t, memSize)
			cell := ma.Nodes[v].Read(addr)
			ops = ops[:0]
			ops = append(ops, prevB[v])
			for _, u := range nbr[v] {
				ops = append(ops, prevB[u])
			}
			out, cellOut := prog.Step(v, t, cell, ops)
			ma.Nodes[v].Op()
			ma.Nodes[v].Write(addr, cellOut)
			// Neighbor exchange: receiving 2d values over distance
			// Spacing() in parallel costs one link traversal.
			ma.Bank.Proc(v).Charge(cost.Message, ma.Spacing())
			b[v] = out
		}
		ma.Bank.Barrier()
	}
	return b, ma.Elapsed() - start, nil
}

// RunGuestParallel is RunGuest with the per-step node loop spread across
// workers OS threads (0 = GOMAXPROCS). The model semantics are identical
// — each node charges only its own meter and writes only its own memory
// and broadcast slot, and the layers are separated by barriers — so
// outputs and every node's virtual clock match the serial run exactly;
// only wall-clock time changes. This is the executor the benchmarks use
// for large guests.
func RunGuestParallel(ma *Machine, prog Program, steps, workers int) ([]hram.Word, cost.Time) {
	if ma.P != ma.N {
		panic(fmt.Sprintf("network: RunGuestParallel needs P == N, got P=%d N=%d", ma.P, ma.N))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > ma.P {
		workers = ma.P
	}
	start := ma.Elapsed()
	memSize := ma.NodeMemory()
	b := make([]hram.Word, ma.P)
	raw := make([]hram.Word, memSize)
	for i := 0; i < ma.P; i++ {
		for a := range raw {
			raw[a] = 0
		}
		b[i] = prog.Init(i, raw)
		for a, w := range raw {
			ma.Nodes[i].Poke(a, w)
		}
	}
	prevB := make([]hram.Word, ma.P)
	nbr := neighborLists(ma.topo, ma.P)
	chunk := (ma.P + workers - 1) / workers
	var wg sync.WaitGroup
	for t := 1; t <= steps; t++ {
		copy(prevB, b)
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > ma.P {
				hi = ma.P
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				ops := make([]hram.Word, 0, 7)
				for v := lo; v < hi; v++ {
					addr := prog.Address(v, t, memSize)
					cell := ma.Nodes[v].Read(addr)
					ops = ops[:0]
					ops = append(ops, prevB[v])
					for _, u := range nbr[v] {
						ops = append(ops, prevB[u])
					}
					out, cellOut := prog.Step(v, t, cell, ops)
					ma.Nodes[v].Op()
					ma.Nodes[v].Write(addr, cellOut)
					ma.Bank.Proc(v).Charge(cost.Message, ma.Spacing())
					b[v] = out
				}
			}(lo, hi)
		}
		wg.Wait()
		ma.Bank.Barrier()
	}
	return b, ma.Elapsed() - start
}

// RunGuestPure executes prog functionally with no cost accounting — the
// ground truth against which hosted simulations are verified. It returns
// the final broadcast values and final per-node memories. Adjacency
// comes from a bare topology mesh: no machine (and no O(n·m) H-RAM
// memory) is ever built for the functional replay.
func RunGuestPure(d, n, m, steps int, prog Program) ([]hram.Word, [][]hram.Word) {
	nbr := neighborLists(topology.NewMesh(d, n, n), n)
	memSize := m // NodeMemory of the fully parallel machine: m·(n/n)
	mems := make([][]hram.Word, n)
	b := make([]hram.Word, n)
	for i := 0; i < n; i++ {
		mems[i] = make([]hram.Word, memSize)
		b[i] = prog.Init(i, mems[i])
	}
	prevB := make([]hram.Word, n)
	ops := make([]hram.Word, 0, 5)
	for t := 1; t <= steps; t++ {
		copy(prevB, b)
		for v := 0; v < n; v++ {
			addr := prog.Address(v, t, memSize)
			ops = ops[:0]
			ops = append(ops, prevB[v])
			for _, u := range nbr[v] {
				ops = append(ops, prevB[u])
			}
			out, cellOut := prog.Step(v, t, mems[v][addr], ops)
			mems[v][addr] = cellOut
			b[v] = out
		}
	}
	return b, mems
}

// RunGuestPureHook is RunGuestPure with an optional per-step hook (nil
// runs RunGuestPure itself). The functional replay is the CPU-dominant
// part of the multiprocessor schemes, so this is where their
// cancellation latency is bounded.
//
// As with RunGuestHook, the hooked loop duplicates RunGuestPure's loop
// verbatim rather than branching inside it: the replay is this package's
// hottest loop, and carrying the hook's error-exit path in it costs ~10%
// even when nil. TestHookedExecutorsMatchUnhooked pins the equivalence.
func RunGuestPureHook(d, n, m, steps int, prog Program, hook StepHook) ([]hram.Word, [][]hram.Word, error) {
	if hook == nil {
		b, mems := RunGuestPure(d, n, m, steps, prog)
		return b, mems, nil
	}
	nbr := neighborLists(topology.NewMesh(d, n, n), n)
	memSize := m // NodeMemory of the fully parallel machine: m·(n/n)
	mems := make([][]hram.Word, n)
	b := make([]hram.Word, n)
	for i := 0; i < n; i++ {
		mems[i] = make([]hram.Word, memSize)
		b[i] = prog.Init(i, mems[i])
	}
	prevB := make([]hram.Word, n)
	ops := make([]hram.Word, 0, 5)
	for t := 1; t <= steps; t++ {
		if err := hook(n); err != nil {
			return nil, nil, err
		}
		copy(prevB, b)
		for v := 0; v < n; v++ {
			addr := prog.Address(v, t, memSize)
			ops = ops[:0]
			ops = append(ops, prevB[v])
			for _, u := range nbr[v] {
				ops = append(ops, prevB[u])
			}
			out, cellOut := prog.Step(v, t, mems[v][addr], ops)
			mems[v][addr] = cellOut
			b[v] = out
		}
	}
	return b, mems, nil
}

func intSqrt(n int) int {
	if n < 0 {
		return -1
	}
	r := int(math.Sqrt(float64(n)))
	for r*r > n {
		r--
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func intCbrt(n int) int {
	if n < 0 {
		return -1
	}
	r := int(math.Cbrt(float64(n)))
	for r*r*r > n {
		r--
	}
	for (r+1)*(r+1)*(r+1) <= n {
		r++
	}
	return r
}
