package bsmp

import (
	"math"
	"testing"
)

func TestFacadeGuestAndNaive(t *testing.T) {
	prog := AsNetwork{G: MixCA{Seed: 1}}
	res, err := Naive(1, 16, 4, 2, 8, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(1, 16, 2, prog); err != nil {
		t.Fatal(err)
	}
	tn := GuestTime(1, 16, 2, 8, prog)
	if tn <= 0 || res.Time <= Time(0) {
		t.Fatal("non-positive times")
	}
	if float64(res.Time)/float64(tn) < BrentSlowdown(16, 4) {
		t.Error("slowdown below Brent — impossible under the model")
	}
}

func TestFacadeUniDC(t *testing.T) {
	prog := Rule90{Seed: 2}
	res, err := UniDC(1, 16, 16, 8, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDag(res, 1, 16, prog); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMulti(t *testing.T) {
	prog := AsNetwork{G: MixCA{Seed: 3}}
	res, err := MultiD1(32, 4, 2, 16, prog, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(1, 32, 2, prog); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBounds(t *testing.T) {
	if A(1, 1024, 1, 16) <= 0 {
		t.Error("A must be positive")
	}
	b12, b23, b34 := Boundaries(1, 1024, 16)
	if !(b12 < b23 && b23 < b34) {
		t.Error("boundaries not ordered")
	}
	if OptimalS(1024, 1, 16) <= 0 {
		t.Error("s* must be positive")
	}
	if NaiveSlowdownBound(1, 64, 1) != 4096 {
		t.Error("naive bound wrong")
	}
}

func TestFacadeMatmul(t *testing.T) {
	a, b := MatmulInput(8, 1)
	cm, tm := MeshMatmul(8, a, b)
	cn, tn := NaiveMatmul(8, a, b)
	cb, tb := BlockedMatmul(8, a, b)
	for i := range cm {
		if cm[i] != cn[i] || cm[i] != cb[i] {
			t.Fatal("products disagree")
		}
	}
	if !(tm < tn && tm < tb) {
		t.Error("mesh not fastest")
	}
}

func TestFacadeMachine(t *testing.T) {
	m := NewMachine(2, 64, 16, 2)
	if m.Spacing() != 2 || m.NodeMemory() != 8 {
		t.Error("machine geometry wrong")
	}
	out, elapsed := RunGuest(NewMachine(1, 8, 8, 1), AsNetwork{G: Rule90{}}, 4)
	if len(out) != 8 || elapsed <= 0 {
		t.Error("RunGuest failed")
	}
}

func TestFacadeExperimentsQuick(t *testing.T) {
	tabs, err := RunAllExperiments(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) < 12 {
		t.Fatalf("got %d experiment tables, want >= 13 (9 E-* + 4 F-*)", len(tabs))
	}
}

func TestSuperlinearSpeedupHeadline(t *testing.T) {
	// The repository's headline sanity: the analytic mesh-vs-naive
	// speedup exceeds the processor count for large n (superlinearity).
	n := 1 << 16
	speed := float64(n) * math.Sqrt(float64(n)) // n^1.5 from the bounds
	if speed <= float64(n) {
		t.Fatal("not superlinear")
	}
}

func TestFacadeRemainingSurface(t *testing.T) {
	prog := AsNetwork{G: MixCA{Seed: 4}}

	// UniNaive + BlockedD1 with the pipelined-memory option.
	un, err := UniNaive(1, 8, 8, Rule90{Seed: 1})
	if err != nil || VerifyDag(un, 1, 8, Rule90{Seed: 1}) != nil {
		t.Fatalf("UniNaive: %v", err)
	}
	bl, err := BlockedD1(16, 2, 8, 0, prog, PipelinedBlocks())
	if err != nil {
		t.Fatal(err)
	}
	if err := bl.Verify(1, 16, 2, prog); err != nil {
		t.Fatal(err)
	}

	// MultiD1Cycles and MultiD2.
	mc, err := MultiD1Cycles(16, 2, 1, 2, prog, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Verify(1, 16, 1, prog); err != nil {
		t.Fatal(err)
	}
	m2, err := MultiD2(64, 4, 1, 4, AsNetwork{G: MixCA{Seed: 4}, Side: 8}, Multi2Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Time <= 0 {
		t.Fatal("MultiD2 time")
	}

	// Bounds surface.
	if Slowdown(1, 256, 4, 8) <= 0 {
		t.Fatal("Slowdown")
	}

	// RestrictMem through the facade.
	rm, err := BlockedD1(16, 4, 8, 0, RestrictMem{P: MixCA{Seed: 4}, Words: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Verify(1, 16, 4, RestrictMem{P: MixCA{Seed: 4}, Words: 2}); err != nil {
		t.Fatal(err)
	}
}
