// Package bsmp is a library-scale reproduction of
//
//	G. Bilardi and F. P. Preparata,
//	"Upper Bounds to Processor-Time Tradeoffs under Bounded-Speed
//	Message Propagation", SPAA 1995, pp. 185–194.
//
// In the paper's "limiting technology" — where message latency is
// proportional to physical distance — simulating an n-processor mesh on
// p < n processors costs more than Brent's classical n/p factor: an extra
// multiplicative locality slowdown A(n, m, p) appears, with four regimes
// depending on the memory density m. Equivalently, parallel machines
// enjoy speedups superlinear in their processor count, because deploying
// processors also buys proximity to memory.
//
// The package exposes:
//
//   - the machine models: f(x)-H-RAMs (hram), bounded-speed meshes
//     Md(n, p, m) (network), and the virtual-time cost engine (cost);
//   - the computation model: the dags G_T(H) of Definition 3 (dag), the
//     diamond/octahedron/tetrahedron domains and the Figure 1–4
//     decompositions (lattice), and the topological-separator executor of
//     Propositions 2–3 (separator);
//   - the paper's simulation algorithms: naive (Prop. 1), uniprocessor
//     divide-and-conquer for d = 1 and 2 (Thms. 2, 5), the blocked
//     general-m scheme (Thm. 3), and the multiprocessor scheme with
//     memory rearrangement and cooperating mode (Thm. 4 / Thm. 1);
//   - the closed-form bounds (analytic) and the experiment harness that
//     reproduces every theorem and figure (exp).
//
// Everything is deterministic and functionally verified: every simulation
// reproduces, bit-exactly, the output of a direct execution of the same
// guest computation, while virtual time accumulates per the paper's cost
// model. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package bsmp

import (
	"context"
	"fmt"
	"strings"

	"bsmp/internal/analytic"
	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/exp"
	"bsmp/internal/guest"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
	"bsmp/internal/obs"
	"bsmp/internal/simulate"
)

// Word is the machine word carried by every memory cell and message.
type Word = hram.Word

// Time is virtual model time (unit: one instruction at address 0).
type Time = cost.Time

// Machine is the mesh machine Md(n, p, m) of Definition 2.
type Machine = network.Machine

// NewMachine builds Md(n, p, m): a d-dimensional mesh (d in {1, 2, 3}) of
// p hierarchical-memory nodes with total volume n and memory density m.
// It panics on malformed geometry (see network.New); use ValidateParams
// to pre-check caller-supplied tuples.
func NewMachine(d, n, p, m int) *Machine { return network.New(d, n, p, m) }

// Program is a synchronous network computation: per-node m-word memory
// plus a broadcast value, in the style of Definition 3.
type Program = network.Program

// DagProgram is the pure dag view of a computation (inputs at t = 0 and a
// step rule), used by the m = 1 theorems.
type DagProgram = dag.Program

// Point is a dag vertex position (X, Y, T).
type Point = lattice.Point

// Result reports a simulation: outputs, final memories, virtual time, and
// a cost ledger.
type Result = simulate.Result

// MultiOptions configures the Theorem 4 simulation; zero value = full
// scheme, flags ablate the rearrangement or the cooperating mode.
type MultiOptions = simulate.MultiOptions

// MultiResult extends Result with multiprocessor accounting.
type MultiResult = simulate.MultiResult

// FaultReport carries the fault-mask accounting of a multi-faulty run
// (dead processors/cells, the effective sub-configuration, and the
// planning stretch factors).
type FaultReport = simulate.FaultReport

// Multi2Options configures the d = 2 multiprocessor model.
type Multi2Options = simulate.Multi2Options

// Multi2Result reports the d = 2 multiprocessor run.
type Multi2Result = simulate.Multi2Result

// RunGuest executes prog for steps steps on the fully parallel machine
// (P == N) with cost accounting, returning outputs and elapsed time Tn.
func RunGuest(m *Machine, prog Program, steps int) ([]Word, Time) {
	return network.RunGuest(m, prog, steps)
}

// GuestTime measures Tn for Md(n, n, m) running prog — the denominator of
// every slowdown in the paper.
func GuestTime(d, n, m, steps int, prog Program) Time {
	return simulate.GuestTime(d, n, m, steps, prog)
}

// GuestTimeContext is GuestTime under a context: the run polls
// cancellation cooperatively and reports progress to any attached
// Progress. A never-cancelled run measures the same time.
func GuestTimeContext(ctx context.Context, d, n, m, steps int, prog Program) (Time, error) {
	return simulate.GuestTimeContext(ctx, d, n, m, steps, prog)
}

// Naive runs the naive simulation of Proposition 1 (and its parallel
// version): slowdown Θ((n/p)^(1+1/d)).
func Naive(d, n, p, m, steps int, prog Program) (Result, error) {
	return simulate.Naive(d, n, p, m, steps, prog)
}

// NaiveContext is Naive under a context: cancellation is polled
// cooperatively between charged operations, so a never-cancelled run's
// virtual times are bit-identical to Naive's.
func NaiveContext(ctx context.Context, d, n, p, m, steps int, prog Program) (Result, error) {
	return simulate.NaiveContext(ctx, d, n, p, m, steps, prog)
}

// UniDC runs the uniprocessor divide-and-conquer simulation of Theorem 2
// (d = 1) or Theorem 5 (d = 2) for m = 1: slowdown Θ(n log n).
func UniDC(d, n, steps, leafSize int, prog DagProgram) (Result, error) {
	return simulate.UniDC(d, n, steps, leafSize, prog)
}

// UniDCContext is UniDC under a context.
func UniDCContext(ctx context.Context, d, n, steps, leafSize int, prog DagProgram) (Result, error) {
	return simulate.UniDCContext(ctx, d, n, steps, leafSize, prog)
}

// UniNaive runs the unsophisticated uniprocessor baseline over the same
// dag: slowdown Θ(n^(1+1/d)).
func UniNaive(d, n, steps int, prog DagProgram) (Result, error) {
	return simulate.UniNaiveDag(d, n, steps, prog)
}

// UniNaiveContext is UniNaive under a context.
func UniNaiveContext(ctx context.Context, d, n, steps int, prog DagProgram) (Result, error) {
	return simulate.UniNaiveDagContext(ctx, d, n, steps, prog)
}

// MachineOption configures the underlying H-RAMs (e.g. PipelinedBlocks).
type MachineOption = hram.Option

// PipelinedBlocks makes block relocations cost latency + length instead of
// per-word latency — the paper's concluding "pipelinable memory"
// alternative, under which the locality slowdown largely disappears.
func PipelinedBlocks() MachineOption { return hram.WithPipelinedBlocks() }

// RestrictMem declares a guest that touches only m' < m memory words per
// node — the conclusions' extra-locality scenario.
type RestrictMem = guest.RestrictMem

// BlockedD1 runs Theorem 3's blocked uniprocessor simulation for general
// m: slowdown Θ(n·min(n, m·Log(n/m))). leafWidth 0 selects the paper's
// executable-diamond width m. Options configure the host memory (e.g.
// PipelinedBlocks).
func BlockedD1(n, m, steps, leafWidth int, prog Program, opts ...MachineOption) (Result, error) {
	return simulate.BlockedD1(n, m, steps, leafWidth, prog, opts...)
}

// BlockedD1Context is BlockedD1 under a context: cancellation is polled
// at every recursion boundary and (amortized) per executed leaf vertex.
func BlockedD1Context(ctx context.Context, n, m, steps, leafWidth int, prog Program, opts ...MachineOption) (Result, error) {
	return simulate.BlockedD1Context(ctx, n, m, steps, leafWidth, prog, opts...)
}

// BlockedD2 is the d = 2 analogue of BlockedD1: the blocked simulation
// over octahedral domains (n = side² must be a perfect square).
func BlockedD2(n, m, steps, leafSpan int, prog Program, opts ...MachineOption) (Result, error) {
	return simulate.BlockedD2(n, m, steps, leafSpan, prog, opts...)
}

// BlockedD2Context is BlockedD2 under a context.
func BlockedD2Context(ctx context.Context, n, m, steps, leafSpan int, prog Program, opts ...MachineOption) (Result, error) {
	return simulate.BlockedD2Context(ctx, n, m, steps, leafSpan, prog, opts...)
}

// BlockedD3 completes the d = 3 extension for general m over the Box6
// separator (n = side³ must be a perfect cube).
func BlockedD3(n, m, steps, leafSpan int, prog Program, opts ...MachineOption) (Result, error) {
	return simulate.BlockedD3(n, m, steps, leafSpan, prog, opts...)
}

// BlockedD3Context is BlockedD3 under a context.
func BlockedD3Context(ctx context.Context, n, m, steps, leafSpan int, prog Program, opts ...MachineOption) (Result, error) {
	return simulate.BlockedD3Context(ctx, n, m, steps, leafSpan, prog, opts...)
}

// AnalyticBlockedD1 computes BlockedD1's virtual time, cost ledger, and
// space bound analytically: no machine state is materialized and
// congruent recursion subtrees replay as memoized cost deltas, so
// lattice volumes of 10^9+ vertices (n = 2^20 × steps = 2^10) finish in
// seconds. The result carries no guest outputs (Outputs/Memories nil);
// validate against the work/span laws and the Theorem 3 bound instead.
func AnalyticBlockedD1(n, m, steps, leafWidth int, prog Program) (Result, error) {
	return simulate.AnalyticBlockedD1(n, m, steps, leafWidth, prog)
}

// AnalyticBlockedD1Context is AnalyticBlockedD1 under a context, with
// BlockedD1Context's cancellation and progress contract.
func AnalyticBlockedD1Context(ctx context.Context, n, m, steps, leafWidth int, prog Program) (Result, error) {
	return simulate.AnalyticBlockedD1Context(ctx, n, m, steps, leafWidth, prog)
}

// MultiD1 runs Theorem 4's multiprocessor simulation: slowdown
// Θ((n/p)·A(n, m, p)).
func MultiD1(n, p, m, steps int, prog Program, opts MultiOptions) (MultiResult, error) {
	return simulate.MultiD1(n, p, m, steps, prog, opts)
}

// MultiD1Context is MultiD1 under a context: cancellation is polled at
// every phase boundary and (amortized) through the kernel calibrations
// and the verification replay.
func MultiD1Context(ctx context.Context, n, p, m, steps int, prog Program, opts MultiOptions) (MultiResult, error) {
	return simulate.MultiD1Context(ctx, n, p, m, steps, prog, opts)
}

// MultiD1Cycles repeats the n-step Theorem 4 simulation to cover
// cycles·n guest steps, amortizing the one-time rearrangement.
func MultiD1Cycles(n, p, m, cycles int, prog Program, opts MultiOptions) (MultiResult, error) {
	return simulate.MultiD1Cycles(n, p, m, cycles, prog, opts)
}

// MultiD1CyclesContext is MultiD1Cycles under a context.
func MultiD1CyclesContext(ctx context.Context, n, p, m, cycles int, prog Program, opts MultiOptions) (MultiResult, error) {
	return simulate.MultiD1CyclesContext(ctx, n, p, m, cycles, prog, opts)
}

// MultiD2 runs the d = 2 case of Theorem 1 (model-grade orchestration;
// see DESIGN.md).
func MultiD2(n, p, m, steps int, prog Program, opts Multi2Options) (Multi2Result, error) {
	return simulate.MultiD2(n, p, m, steps, prog, opts)
}

// MultiD2Context is MultiD2 under a context.
func MultiD2Context(ctx context.Context, n, p, m, steps int, prog Program, opts Multi2Options) (Multi2Result, error) {
	return simulate.MultiD2Context(ctx, n, p, m, steps, prog, opts)
}

// Multi3Options configures the d = 3 multiprocessor model.
type Multi3Options = simulate.Multi3Options

// Multi3Result reports the d = 3 multiprocessor run.
type Multi3Result = simulate.Multi3Result

// MultiD3 evaluates the conjectured d = 3 case of Theorem 1 (model-grade,
// with kernels measured by BlockedD3; see DESIGN.md).
func MultiD3(n, p, m, steps int, prog Program, opts Multi3Options) (Multi3Result, error) {
	return simulate.MultiD3(n, p, m, steps, prog, opts)
}

// MultiD3Context is MultiD3 under a context.
func MultiD3Context(ctx context.Context, n, p, m, steps int, prog Program, opts Multi3Options) (Multi3Result, error) {
	return simulate.MultiD3Context(ctx, n, p, m, steps, prog, opts)
}

// VerifyDag checks a dag-level result against the reference execution.
func VerifyDag(r Result, d, n int, prog DagProgram) error {
	return simulate.VerifyDag(r, d, n, prog)
}

// Scheme registry: the paper's simulation algorithms selectable by name
// ("naive", "unidc", "blocked", "multi") and dimension instead of
// hard-wired function calls.

// Scheme is a named simulation algorithm entry.
type Scheme = simulate.Scheme

// SchemeConfig carries the per-run knobs a scheme may consume; the zero
// value selects every scheme's paper-optimal defaults.
type SchemeConfig = simulate.SchemeConfig

// Schemes lists the registered (algorithm, dimension) entries.
func Schemes() []Scheme { return simulate.Schemes }

// SchemeTable renders the registry as an aligned text table (one row per
// (name, d) entry, header first). It is the single rendering shared by
// `experiments -schemes` and the unknown -scheme error message in
// cmd/tradeoff, so both always agree with the registry.
func SchemeTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-2s %-5s %s\n", "name", "d", "multi", "description")
	for _, s := range Schemes() {
		multi := "-"
		if s.Multiproc {
			multi = "p>1"
		}
		fmt.Fprintf(&b, "%-16s %-2d %-5s %s\n", s.Name, s.D, multi, s.Description)
	}
	return b.String()
}

// SchemeByName returns the registered scheme for (name, d).
func SchemeByName(name string, d int) (Scheme, error) { return simulate.SchemeByName(name, d) }

// RunScheme looks up (name, d) in the registry and runs it. Parameters
// are validated before any machinery is constructed: a malformed tuple
// yields a *ParamError, never a panic.
func RunScheme(name string, d, n, p, m, steps int, prog Program, cfg SchemeConfig) (MultiResult, error) {
	return simulate.RunScheme(name, d, n, p, m, steps, prog, cfg)
}

// RunSchemeContext is RunScheme under a context: the selected scheme
// polls cancellation cooperatively (returning the context's error) and
// reports step progress to any Progress attached with WithProgress.
func RunSchemeContext(ctx context.Context, name string, d, n, p, m, steps int, prog Program, cfg SchemeConfig) (MultiResult, error) {
	return simulate.RunSchemeContext(ctx, name, d, n, p, m, steps, prog, cfg)
}

// ParamError is the typed rejection of a malformed parameter tuple: the
// offending field, the violated constraint, and the value. Every scheme
// registry entry point returns it (wrapped in error) instead of
// panicking.
type ParamError = simulate.ParamError

// ValidateParams checks (scheme, d, n, p, m, steps) against the
// registered scheme's constraints without running anything. The
// optional cfg carries the per-run knobs some schemes constrain (the
// multi-theta delay ratio Θ); omitting it validates the zero config. It
// returns nil for a runnable tuple, a *ParamError for a constraint
// violation, or the registry lookup error for an unknown (scheme, d)
// pair.
func ValidateParams(scheme string, d, n, p, m, steps int, cfg ...SchemeConfig) error {
	return simulate.ValidateParams(scheme, d, n, p, m, steps, cfg...)
}

// Closed-form bounds (package analytic re-exported).

// A is Theorem 1's locality-slowdown term A(n, m, p) for dimension d.
func A(d, n, m, p int) float64 { return analytic.A(d, n, m, p) }

// Slowdown is Theorem 1's full bound (n/p)·A(n, m, p).
func Slowdown(d, n, m, p int) float64 { return analytic.Slowdown(d, n, m, p) }

// Boundaries returns the three range boundaries of Theorem 1.
func Boundaries(d, n, p int) (b12, b23, b34 float64) { return analytic.Boundaries(d, n, p) }

// OptimalS is the optimal strip width s* of Theorem 4's analysis.
func OptimalS(n, m, p int) float64 { return analytic.OptimalS(n, m, p) }

// BrentSlowdown is the classical instantaneous-model slowdown ceil(n/p).
func BrentSlowdown(n, p int) float64 { return analytic.Brent(n, p) }

// NaiveSlowdownBound is Proposition 1's (n/p)^(1+1/d).
func NaiveSlowdownBound(d, n, p int) float64 { return analytic.NaiveSlowdown(d, n, p) }

// Workloads.

// Rule90 is the elementary CA 90 guest (m = 1).
type Rule90 = guest.Rule90

// MixCA is the order-sensitive dense integer CA guest (any m).
type MixCA = guest.MixCA

// AsNetwork adapts a guest to the network Program interface; set Side for
// d = 2 grids.
type AsNetwork = guest.AsNetwork

// Matrix multiplication — the paper's Section 1 example.

// MatmulInput builds deterministic sq × sq test matrices.
func MatmulInput(sq int, seed uint64) (a, b []Word) { return guest.MatmulInput(sq, seed) }

// MeshMatmul multiplies on the fully parallel mesh in Θ(√n) time.
func MeshMatmul(sq int, a, b []Word) ([]Word, Time) { return guest.MeshMatmul(sq, a, b) }

// NaiveMatmul multiplies on a uniprocessor H-RAM in Θ(n²) time.
func NaiveMatmul(sq int, a, b []Word) ([]Word, Time) { return guest.NaiveMatmul(sq, a, b) }

// BlockedMatmul multiplies on a uniprocessor H-RAM with recursive
// blocking in Θ(n^(3/2)·log n) time.
func BlockedMatmul(sq int, a, b []Word) ([]Word, Time) { return guest.BlockedMatmul(sq, a, b) }

// Experiments.

// ExperimentTable is one experiment's formatted output.
type ExperimentTable = exp.Table

// RunAllExperiments reproduces every table and figure of the paper
// (quick selects reduced sizes). Experiments run concurrently on up to
// GOMAXPROCS workers; output order matches the sequential battery.
func RunAllExperiments(quick bool) ([]*ExperimentTable, error) {
	return exp.All(exp.Scale{Quick: quick})
}

// RunAllExperimentsSequential is RunAllExperiments on a single worker,
// for profiling runs where interleaved experiments would muddy the
// profile.
func RunAllExperimentsSequential(quick bool) ([]*ExperimentTable, error) {
	return exp.AllSequential(exp.Scale{Quick: quick})
}

// RunAllExperimentsContext is RunAllExperiments under a context: once the
// context is cancelled no new experiment starts, in-flight experiments
// stop at their next checkpoint, and the tables of every experiment that
// finished are returned (in battery order) alongside the context's error.
func RunAllExperimentsContext(ctx context.Context, quick bool) ([]*ExperimentTable, error) {
	return exp.AllContext(ctx, exp.Scale{Quick: quick})
}

// RunAllExperimentsSequentialContext is RunAllExperimentsContext on a
// single worker.
func RunAllExperimentsSequentialContext(ctx context.Context, quick bool) ([]*ExperimentTable, error) {
	return exp.AllSequentialContext(ctx, exp.Scale{Quick: quick})
}

// Execution contexts & progress metering.

// Progress is a set of monotone counters a simulation publishes while it
// runs: guest dag vertices executed and phase/recursion boundaries
// crossed. Attach one to a context with WithProgress and sample it from
// another goroutine while the simulation is in flight.
type Progress = simulate.Progress

// WithProgress returns a context carrying p; every context-aware entry
// point in this package publishes its progress to the attached Progress.
func WithProgress(ctx context.Context, p *Progress) context.Context {
	return simulate.WithProgress(ctx, p)
}

// ProgressFrom returns the Progress attached to ctx, or nil.
func ProgressFrom(ctx context.Context) *Progress { return simulate.ProgressFrom(ctx) }

// Span tracing.

// Tracer records a per-run tree of timed spans: every context-aware
// entry point emits spans at its phase/recursion boundaries when a
// Tracer is attached with WithTracer. Spans carry wall-clock durations
// and virtual-time deltas sampled from the cost meters — attaching a
// tracer never perturbs virtual time (the golden times stay
// bit-identical). A Tracer belongs to one run: sharing one across
// concurrent simulations is memory-safe but garbles span nesting.
type Tracer = obs.Tracer

// Span is one node of a Tracer's span tree.
type Span = obs.Span

// NewTracer returns an empty tracer with the default span cap.
func NewTracer() *Tracer { return obs.NewTracer() }

// WithTracer returns a context carrying t; simulations started under
// the returned context record their span timeline into t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return obs.WithTracer(ctx, t)
}

// TracerFrom returns the Tracer attached to ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer { return obs.FromContext(ctx) }

// KernelCacheStats reports the bounded multiprocessor kernel cache:
// resident entries, hits, misses, and capacity evictions since process
// start.
func KernelCacheStats() (entries int, hits, misses, evictions int64) {
	return simulate.KernelCacheStats()
}

// MemoStats is a snapshot of the unified memo store (kernel values,
// exact subtree traces, analytic subtree deltas) with per-(kind, level)
// hit/miss/eviction rows.
type MemoStats = simulate.MemoStats

// MemoLevelStats is one (kind, level) row of MemoStats.
type MemoLevelStats = simulate.MemoLevelStats

// MemoStatsSnapshot reports the unified memo store's capacity, totals,
// and per-(kind, level) statistics since process start.
func MemoStatsSnapshot() MemoStats { return simulate.MemoStatsSnapshot() }

// MemoCapacity reports the memo store's shared entry bound.
func MemoCapacity() int { return simulate.MemoCapacity() }

// SetMemoCapacity rebounds the unified memo store shared by every
// engine, evicting oldest entries if the store currently exceeds the new
// bound. A bound <= 0 disables memoization process-wide.
func SetMemoCapacity(n int) { simulate.SetMemoCapacity(n) }

// WithoutMemo returns a context under which simulations skip the memo
// store entirely — every subtree executes for real. Results are
// bit-identical either way; the memo-off path exists for benchmarking
// and for callers that need machine memory to reflect a full execution.
func WithoutMemo(ctx context.Context) context.Context { return simulate.WithoutMemo(ctx) }
