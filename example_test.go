package bsmp_test

import (
	"fmt"

	"bsmp"
)

// ExampleUniDC simulates a linear-array cellular automaton on one
// processor via the topological-separator technique (Theorem 2) and
// verifies it against the direct execution.
func ExampleUniDC() {
	prog := bsmp.Rule90{Seed: 7}
	res, err := bsmp.UniDC(1, 32, 32, 8, prog)
	if err != nil {
		panic(err)
	}
	if err := bsmp.VerifyDag(res, 1, 32, prog); err != nil {
		panic(err)
	}
	fmt.Println("verified:", len(res.Outputs), "outputs")
	// Output: verified: 32 outputs
}

// ExampleA evaluates Theorem 1's locality slowdown in each of its four
// ranges of the memory density m.
func ExampleA() {
	n, p := 1024, 16
	for _, m := range []int{1, 16, 256, 2048} {
		fmt.Printf("m=%-5d A=%.1f\n", m, bsmp.A(1, n, m, p))
	}
	// Output:
	// m=1     A=7.1
	// m=16    A=19.3
	// m=256   A=57.2
	// m=2048  A=64.0
}

// ExampleMultiD1 runs the full Theorem 4 multiprocessor simulation —
// rearrangement, Regime 1 relocation, Regime 2 cooperating execution —
// and checks the guest state is reproduced exactly.
func ExampleMultiD1() {
	prog := bsmp.AsNetwork{G: bsmp.MixCA{Seed: 3}}
	res, err := bsmp.MultiD1(64, 4, 2, 32, prog, bsmp.MultiOptions{})
	if err != nil {
		panic(err)
	}
	if err := res.Verify(1, 64, 2, prog); err != nil {
		panic(err)
	}
	fmt.Println("strip width:", res.StripWidth)
	// Output: strip width: 8
}

// ExampleBoundaries prints Theorem 1's range boundaries: the memory
// densities at which the dominant simulation mechanism changes.
func ExampleBoundaries() {
	b12, b23, b34 := bsmp.Boundaries(1, 4096, 64)
	fmt.Printf("%.0f %.0f %.0f\n", b12, b23, b34)
	// Output: 8 512 4096
}

// ExampleMeshMatmul reproduces the paper's Section 1 exhibit: the mesh's
// speedup over the straightforward uniprocessor is superlinear in the
// number of processors.
func ExampleMeshMatmul() {
	sq := 32 // 32x32 matrices on a 32x32 mesh: n = 1024 processors
	a, b := bsmp.MatmulInput(sq, 1)
	_, tMesh := bsmp.MeshMatmul(sq, a, b)
	_, tNaive := bsmp.NaiveMatmul(sq, a, b)
	speedup := float64(tNaive) / float64(tMesh)
	fmt.Println("superlinear:", speedup > float64(sq*sq))
	// Output: superlinear: true
}
